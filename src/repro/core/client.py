"""The RStore client library: the memory-like API.

Control path (expensive, infrequent)::

    region = yield from client.alloc("ranks", 64 * MiB)   # master RPC
    mapping = yield from client.map(region)               # connect + cache

Control RPCs route through the :class:`~repro.core.shard.ShardRouter`:
region names hash onto metadata shards, and each call dials only the
shard owning its name.  ``map`` by name additionally consults the
client's **metadata cache** — a leased, epoch-stamped descriptor cache
with single-flight miss coalescing and short negative entries — so a
region's shard is contacted at most once per epoch per region; an
epoch bump (observed in any reply, or via a data-path fence) drops
that shard's leases and forces exactly one refresh.

Data path (one-sided, no server CPU, no metadata lookups)::

    yield from mapping.write(0, b"...")
    data = yield from mapping.read(0, 4096)
    old = yield from mapping.faa(8, 1)

Asynchronous data path — every op can also be issued without blocking.
``*_async`` methods return an :class:`OpFuture` immediately; the caller
overlaps work and collects the result with ``yield from fut.wait()``.
:class:`IoBatch` goes further: it collects many ops (across mappings),
coalesces adjacent same-stripe pieces into single work requests, posts
each QP's share with **one doorbell** (selective signaling: only the
last WR of a doorbell batch is signaled), and resolves every future
through the client's single completion dispatcher::

    batch = client.batch()
    futs = [batch.read(mapping, off, 64) for off in offsets]   # queue
    yield from batch.flush()                                   # submit
    results = yield from batch.wait_all()                      # collect

``map`` resolves everything an IO will ever need — per-stripe server,
remote address, rkey, and a connected QP per server (QPs are cached
client-wide, so mapping a second region to the same servers is nearly
free).  After that every ``read``/``write`` translates to one-sided
RDMA with pure local arithmetic: RDMA's separation philosophy extended
to the cluster.

Completion ownership: completions belong to the **client dispatcher**,
never to the op that submitted them.  The dispatcher routes each work
completion to its doorbell group and from there to the futures whose
pieces it carries; the blocking ``read``/``write``/``faa`` are thin
wrappers (submit + wait) over the same machinery.

Failures on the data path are *retryable*: a completion error (server
death, injected NIC fault) hands the future to a background retry
worker that re-``lookup``\\ s the region at the master with capped
exponential backoff + deterministic jitter, rebuilds the per-server QP
table if the descriptor version advanced (replica promotion, background
repair), and replays only the failed sub-operations — unrelated
in-flight batches are never disturbed.  An error reaches the
application only once ``data_retry_limit`` attempts are exhausted — a
single server crash under ``replication >= 2`` is invisible.

**Atomics are the exception**: reads and writes are idempotent, but a
replayed FAA/CAS whose first attempt *did* apply mutates the word
twice.  ``faa``/``cas`` therefore refuse to replay after a completion
error unless called with ``idempotent=True``; see
:meth:`Mapping.faa`.  An atomic flushed behind another WR's error in
its doorbell batch is equally ambiguous (it may still execute
remotely), so it follows the same rule.
"""

from __future__ import annotations

from collections import deque
from typing import Optional, Union

from repro.core.config import RStoreConfig
from repro.core.errors import (
    BoundsError,
    DeadlineExceededError,
    MasterUnavailableError,
    NotMappedError,
    RecoverableError,
    RegionNotFoundError,
    RegionUnavailableError,
    RStoreError,
    StaleEpochError,
)
from repro.core.pool import LocalBufferPool
from repro.core.region import RegionDesc
from repro.core.shard import ShardRouter
from repro.datapath.policy import PathPolicy
from repro.obs import obs_for
from repro.rdma.cm import ConnectionManager
from repro.rdma.memory import MemoryRegion
from repro.rdma.nic import RNic
from repro.rdma.qp import QueuePair
from repro.rdma.types import Opcode, QpState, RdmaError
from repro.rdma.wr import SendWR
from repro.rpc.channel import ChannelClosed
from repro.rpc.endpoint import RpcClient, RpcError, RpcRemoteError, RpcTimeout
from repro.sanitize import rsan_for
from repro.simnet.kernel import Simulator
from repro.simnet.rand import derive_rng

__all__ = ["RStoreClient", "Mapping", "IoBatch", "OpFuture"]

# Remote RStore exceptions re-raise locally as their real types.
import repro.core.errors as _errors

_ERROR_TYPES = {
    name: getattr(_errors, name)
    for name in _errors.__all__
}

_ATOMIC_OPS = (Opcode.ATOMIC_FAA, Opcode.ATOMIC_CAS)

#: control methods that legitimately park at the master (coordination
#: rendezvous) — they get crash-tolerant redial but no deadline
_BLOCKING_CONTROL = frozenset({"barrier", "allreduce", "wait_note"})

#: control methods whose first argument is a name the shard map routes;
#: everything else (stats, membership) defaults to shard 0 so existing
#: single-master callers keep working unchanged
_NAME_ROUTED = frozenset({
    "alloc", "lookup", "resize", "free",
    "barrier", "allreduce", "notify", "wait_note",
})


def _translated(exc: RpcRemoteError) -> Exception:
    cls = _ERROR_TYPES.get(exc.error_type)
    if cls is not None:
        return cls(exc.remote_message)
    return exc


class OpFuture:
    """Handle for one in-flight data-path operation.

    Created by the ``*_async`` methods and :class:`IoBatch`; resolves
    (or fails) when the client dispatcher has retired every sub-request
    of the op — including any replay rounds the retry worker ran on its
    behalf.  ``yield from fut.wait()`` parks until then and returns the
    op's value (bytes for reads, byte count for writes, the prior word
    for atomics) or raises the op's error.

    A piece is ``(stripe_index, stripe_offset, take, local_cursor)`` —
    enough to replay the sub-operation against a *newer* descriptor
    (stripe geometry is immutable; only replica sets change).
    """

    __slots__ = (
        "client", "mapping", "opcode", "kind", "offset", "length",
        "wire_scale", "fan_out", "idempotent", "compare", "swap",
        "local_mr", "done", "value", "error", "resolved_at", "deadline",
        "resolve_index", "_event", "_chunk", "_remaining", "_failure",
        "_failed", "_last_wc", "_flush_ambiguous", "_attempts",
        "trace_id", "_span", "_rsan",
    )

    def __init__(self, client: "RStoreClient", mapping: "Mapping",
                 opcode: Opcode, kind: str, offset: int, length: int,
                 wire_scale: int = 1, idempotent: bool = False,
                 compare: int = 0, swap: int = 0):
        self.client = client
        self.mapping = mapping
        self.opcode = opcode
        #: "read", "write", "read_into", "write_from", "faa" or "cas"
        self.kind = kind
        self.offset = offset
        self.length = length
        self.wire_scale = wire_scale
        #: writes land on every replica; reads hit only the primary
        self.fan_out = opcode is Opcode.RDMA_WRITE
        self.idempotent = idempotent
        self.compare = compare
        self.swap = swap
        self.local_mr: Optional[MemoryRegion] = None
        self.done = False
        self.value = None
        self.error: Optional[Exception] = None
        #: absolute retry budget: once past it, no replay round starts
        self.deadline: Optional[float] = (
            client.sim.now + client.config.op_deadline_s
            if client.config.op_deadline_s is not None else None
        )
        #: simulated time the future resolved (diagnostics/tests)
        self.resolved_at: Optional[float] = None
        #: client-wide resolution sequence number — futures resolving at
        #: the same instant still have a total, deterministic order
        self.resolve_index: Optional[int] = None
        self._event = None
        self._chunk = None
        self._remaining = 0
        self._failure: Optional[Exception] = None
        #: pieces whose sub-request failed (candidates for replay)
        self._failed: list[tuple] = []
        self._last_wc = None
        self._flush_ambiguous = False
        self._attempts = 0
        #: per-op trace: a whole-op envelope span from submission to
        #: resolution, id shared by every layer's spans for this op
        tracer = client.obs.tracer
        if tracer.enabled:
            self.trace_id = tracer.next_trace_id()
            self._span = tracer.span(
                f"data.op.{kind}", trace_id=self.trace_id,
                offset=offset, nbytes=length,
            )
        else:
            self.trace_id = None
            self._span = None
        #: sanitizer stamp: one per op, shared by every WR (including
        #: replays) posted on its behalf
        rsan = client.rsan
        if rsan.enabled:
            access_kind = ("atomic" if opcode in _ATOMIC_OPS
                           else "read" if opcode is Opcode.RDMA_READ
                           else "write")
            self._rsan = rsan.op_stamp(client._rsan_actor, access_kind)
        else:
            self._rsan = None

    @property
    def is_atomic(self) -> bool:
        return self.opcode in _ATOMIC_OPS

    def wait(self):
        """Park until the op resolves (generator); return its value."""
        if not self.done:
            tracer = self.client.obs.tracer
            parked = self.client.sim.now if tracer.enabled else None
            if self._event is None:
                self._event = self.client.sim.event()
            yield self._event
            if parked is not None:
                tracer.record("data.future.wait", parked,
                              trace_id=self.trace_id, op=self.kind)
        if self._rsan is not None:
            # the issuer just observed the completion: everything it
            # does from here happens-after this op.  Errors ack too —
            # the op is over either way, and stalling the watermark
            # forever would hide unrelated later races.
            self.client.rsan.op_acked(self._rsan)
        if self.error is not None:
            raise self.error
        return self.value

    # -- resolution (dispatcher / retry-worker side) ------------------------

    def _take_value(self):
        if self.is_atomic:
            return self._last_wc.atomic_result
        if self.kind == "read":
            return self._chunk.read_bytes(self.length)
        if self.kind == "write":
            return self.length
        return None

    def _resolve(self, value) -> None:
        if self.done:
            return
        self.value = value
        self._finish()

    def _fail(self, exc: Exception) -> None:
        if self.done:
            return
        self.error = exc
        self._finish()

    def _finish(self) -> None:
        self.done = True
        self.resolved_at = self.client.sim.now
        self.resolve_index = self.client._next_resolve_index()
        if self._span is not None:
            self._span.finish(ok=self.error is None,
                              attempts=self._attempts + 1)
            self._span = None
        self.mapping._inflight.discard(self)
        if self._chunk is not None:
            self._chunk.release()
            self._chunk = None
        if self._event is not None and not self._event.triggered:
            self._event.succeed()

    # -- sub-request retirement ---------------------------------------------

    def _sub_ok(self, piece) -> None:
        """An unsignaled WR proven successful by its doorbell group."""
        if self.done:
            return
        self._retire()

    def _sub_done(self, piece, wc) -> None:
        if self.done:
            return
        self._last_wc = wc
        if not wc.ok:
            if self._failure is None:
                detail = wc.detail or ""
                if "stale epoch" in detail:
                    # the server's fence caught a WR stamped with a
                    # descriptor from a previous cluster era; the retry
                    # worker refreshes metadata immediately, no backoff
                    self._failure = StaleEpochError(
                        f"data-path fence: {wc.status.value} {detail}"
                    )
                else:
                    self._failure = RegionUnavailableError(
                        f"data-path failure: {wc.status.value} {detail}"
                    )
            if piece is not None:
                self._failed.append(piece)
        self._retire()

    def _sub_flushed(self, piece) -> None:
        """A WR flushed behind an earlier error in its doorbell batch.

        Its remote outcome is unknown (the NIC may still execute it),
        which is why flushed atomics count as ambiguous.
        """
        if self.done:
            return
        self._flush_ambiguous = True
        if self._failure is None:
            self._failure = RegionUnavailableError(
                "data-path failure: flushed behind an earlier error in "
                "its doorbell batch"
            )
        if piece is not None:
            self._failed.append(piece)
        self._retire()

    def _sub_aborted(self, piece, exc: Exception) -> None:
        """Retire a sub-request that could not even be posted."""
        if self.done:
            return
        if self._failure is None:
            self._failure = exc
        if piece is not None:
            self._failed.append(piece)
        self._retire()

    def _retire(self) -> None:
        self._remaining -= 1
        if self._remaining == 0 and not self.done:
            self.client._round_done(self)


class _WrToken:
    """The ``wr_id`` of one work request: the futures/pieces it carries.

    Coalescing merges adjacent WRs, so one token can carry sub-requests
    of several futures; they all retire together.
    """

    __slots__ = ("subs", "group", "retired")

    def __init__(self, subs: list):
        #: list of (future, piece) pairs
        self.subs = subs
        #: the doorbell group, set when the WR is posted in a batch
        self.group: Optional["_Doorbell"] = None
        self.retired = False

    def abort(self, exc: Exception) -> None:
        if self.retired:
            return
        self.retired = True
        if self.group is not None:
            self.group.unretired -= 1
        for fut, piece in self.subs:
            fut._sub_aborted(piece, exc)


class _Doorbell:
    """One doorbell batch: the unit of selective signaling.

    Only the last WR (and any atomics, which need their result value)
    is signaled.  The tail's success completion proves — via the QP's
    in-post-order delivery — that every unsignaled WR before it
    succeeded too; an error completion breaks the group with RC flush
    semantics instead.
    """

    __slots__ = ("pump", "tokens", "unretired", "credited")

    def __init__(self, pump: "_QpPump", tokens: list[_WrToken]):
        self.pump = pump
        self.tokens = tokens
        self.unretired = len(tokens)
        self.credited = False
        for token in tokens:
            token.group = self


class _QpPump:
    """Per-QP submission throttle honouring the send-queue depth.

    Synchronous singles keep the small interleaving-friendly window;
    explicit batch submissions may fill the deeper batch window (the
    caller asked for depth).  Batch reservations that find no room park
    on ``waiters`` until completions return credit.
    """

    __slots__ = ("qp", "queue", "inflight", "capacity", "batch_capacity",
                 "waiters")

    def __init__(self, qp: QueuePair, window: int = 8,
                 batch_window: int = 32):
        self.qp = qp
        self.queue: deque[SendWR] = deque()
        self.inflight = 0
        self.capacity = max(1, min(window, qp.sq_depth - 8))
        self.batch_capacity = max(
            self.capacity, min(batch_window, qp.sq_depth // 2)
        )
        self.waiters: list = []

    def submit(self, wr: SendWR) -> None:
        if self.inflight < self.capacity:
            self._post(wr)
        else:
            self.queue.append(wr)

    def reserve(self, want: int) -> int:
        """Claim up to *want* batch slots; returns how many (may be 0)."""
        room = self.batch_capacity - self.inflight
        if room <= 0:
            return 0
        take = min(want, room)
        self.inflight += take
        return take

    def on_complete(self) -> None:
        self.credit(1)

    def credit(self, n: int) -> None:
        self.inflight -= n
        while self.queue and self.inflight < self.capacity:
            self._post(self.queue.popleft())
        if self.waiters and self.inflight < self.batch_capacity:
            waiters, self.waiters = self.waiters, []
            for event in waiters:
                if not event.triggered:
                    event.succeed()

    def _post(self, wr: SendWR) -> None:
        try:
            self.qp.post_send(wr)
            self.inflight += 1
        except RdmaError as exc:
            token: _WrToken = wr.wr_id
            token.abort(RegionUnavailableError(str(exc)))


def _coalesce(wrs: list[SendWR], max_wire_chunk: int) -> list[SendWR]:
    """Merge adjacent pieces into single WRs where the wire allows it.

    Two consecutive WRs merge when they are the same kind of one-sided
    op against contiguous local *and* remote bytes of the same MRs with
    the same wire scaling, and the merged WR stays under the wire-chunk
    ceiling.  The merged token carries both WRs' sub-requests, so
    failure replay still works at piece granularity.
    """
    merged = [wrs[0]]
    for wr in wrs[1:]:
        last = merged[-1]
        if (wr.opcode is last.opcode
                and wr.opcode in (Opcode.RDMA_READ, Opcode.RDMA_WRITE)
                and wr.local_mr is not None
                and wr.local_mr is last.local_mr
                and wr.rkey == last.rkey
                and wr.local_addr == last.local_addr + last.length
                and wr.remote_addr == last.remote_addr + last.length
                and (wr.wire_length is None) == (last.wire_length is None)
                and (wr.wire_length is None
                     or wr.wire_length * last.length
                     == last.wire_length * wr.length)
                and last.bytes_on_wire + wr.bytes_on_wire <= max_wire_chunk):
            last.length += wr.length
            if last.wire_length is not None:
                last.wire_length += wr.wire_length
            last.wr_id.subs.extend(wr.wr_id.subs)
        else:
            merged.append(wr)
    return merged


class IoBatch:
    """Collects data-path ops for one flush — across mappings.

    ``read``/``write`` stage through the client's registered pool (so
    they may park waiting for staging space — generators); the
    zero-copy and atomic variants queue synchronously.  ``flush``
    plans every queued op, coalesces adjacent pieces per QP, and posts
    each QP's share in doorbell batches; ``wait_all`` parks until every
    future resolved and returns their values in queue order.
    """

    def __init__(self, client: "RStoreClient"):
        self.client = client
        #: futures in queue order (the order ``wait_all`` returns)
        self.futures: list[OpFuture] = []
        self._staged: list[tuple] = []
        #: per-QP WR lists accumulated by ``_stage`` during flush
        self._queues: dict[QueuePair, list[SendWR]] = {}

    def read(self, mapping: "Mapping", offset: int, length: int,
             wire_scale: int = 1):
        """Queue a staged read (generator); returns its future."""
        mapping._check_usable()
        fut = OpFuture(self.client, mapping, Opcode.RDMA_READ, "read",
                       offset, length, wire_scale)
        self.futures.append(fut)
        if length == 0:
            fut._resolve(b"")
            return fut
        chunk = yield from self.client._staging.alloc(length)
        fut._chunk = chunk
        self._staged.append((fut, mapping, chunk.mr, chunk.addr))
        return fut

    def write(self, mapping: "Mapping", offset: int, payload: bytes,
              wire_scale: int = 1):
        """Queue a staged write (generator); returns its future."""
        mapping._check_usable()
        fut = OpFuture(self.client, mapping, Opcode.RDMA_WRITE, "write",
                       offset, len(payload), wire_scale)
        self.futures.append(fut)
        if not payload:
            fut._resolve(0)
            return fut
        chunk = yield from self.client._staging.alloc(len(payload))
        fut._chunk = chunk
        yield from self.client.nic.host.cpu.copy(len(payload))
        chunk.write_bytes(payload)
        self._staged.append((fut, mapping, chunk.mr, chunk.addr))
        return fut

    def read_into(self, mapping: "Mapping", local_mr: MemoryRegion,
                  local_addr: int, offset: int, length: int,
                  wire_scale: int = 1) -> OpFuture:
        """Queue a zero-copy read; returns its future."""
        mapping._check_usable()
        fut = OpFuture(self.client, mapping, Opcode.RDMA_READ, "read_into",
                       offset, length, wire_scale)
        self.futures.append(fut)
        if length == 0:
            fut._resolve(None)
            return fut
        self._staged.append((fut, mapping, local_mr, local_addr))
        return fut

    def write_from(self, mapping: "Mapping", local_mr: MemoryRegion,
                   local_addr: int, offset: int, length: int,
                   wire_scale: int = 1) -> OpFuture:
        """Queue a zero-copy write; returns its future."""
        mapping._check_usable()
        fut = OpFuture(self.client, mapping, Opcode.RDMA_WRITE, "write_from",
                       offset, length, wire_scale)
        self.futures.append(fut)
        if length == 0:
            fut._resolve(None)
            return fut
        self._staged.append((fut, mapping, local_mr, local_addr))
        return fut

    def faa(self, mapping: "Mapping", offset: int, delta: int,
            idempotent: bool = False) -> OpFuture:
        """Queue a fetch-and-add; see :meth:`Mapping.faa` for semantics."""
        fut = mapping._make_atomic(Opcode.ATOMIC_FAA, offset, delta, 0,
                                   idempotent)
        self.futures.append(fut)
        self._staged.append((fut, mapping, None, 0))
        return fut

    def cas(self, mapping: "Mapping", offset: int, expected: int,
            desired: int, idempotent: bool = False) -> OpFuture:
        """Queue a compare-and-swap; returns its future."""
        fut = mapping._make_atomic(Opcode.ATOMIC_CAS, offset, expected,
                                   desired, idempotent)
        self.futures.append(fut)
        self._staged.append((fut, mapping, None, 0))
        return fut

    def _stage(self, qp: QueuePair, wr: SendWR) -> None:
        self._queues.setdefault(qp, []).append(wr)

    def flush(self):
        """Plan, coalesce and post everything queued (generator).

        Returns the number of work requests posted (after coalescing).
        The batch is reusable: ops queued after a flush go out on the
        next one.
        """
        staged, self._staged = self._staged, []
        span = self.client.obs.tracer.span("data.batch.flush",
                                           ops=len(staged))
        for fut, mapping, local_mr, local_addr in staged:
            if fut.done:
                continue
            try:
                if fut.is_atomic:
                    yield from mapping._submit_atomic(fut, batch=self)
                else:
                    yield from mapping._submit(fut, local_mr, local_addr,
                                               batch=self)
            except Exception as exc:
                fut._fail(exc)
        queues, self._queues = self._queues, {}
        posted = 0
        for qp, wrs in queues.items():
            merged = _coalesce(wrs, self.client.config.max_wire_chunk)
            posted += len(merged)
            yield from self.client._post_batch(qp, merged)
        span.finish(wrs=posted)
        return posted

    def wait_all(self):
        """Park until every queued future resolved (generator).

        Returns the values in queue order; failed ops contribute
        ``None``.  The **first** failure (in queue order) re-raises
        after all futures have resolved, so no op is left dangling.
        """
        results = []
        first_error: Optional[Exception] = None
        for fut in self.futures:
            try:
                value = yield from fut.wait()
            except Exception as exc:
                if first_error is None:
                    first_error = exc
                results.append(None)
            else:
                results.append(value)
        if first_error is not None:
            raise first_error
        return results


class Mapping:
    """A mapped region: the data-path handle."""

    def __init__(self, client: "RStoreClient", desc: RegionDesc,
                 path_policy: Optional[str] = None):
        self.client = client
        self.desc = desc
        #: the metadata shard owning this region's name — stamped onto
        #: every WR so servers fence against the right shard's epoch
        self.shard = client._router.shard_of(desc.name)
        #: how composite ops over this mapping run (see repro.datapath):
        #: one_sided | server_op | remote_fetch | adaptive.  Raw
        #: read/write/atomic calls are always one-sided; data
        #: structures (kv, coord) consult this to route their ops.
        self.path_policy = PathPolicy.validate(
            path_policy if path_policy is not None
            else client.config.datapath_policy
        )
        self.active = True
        #: host_id -> connected data QP (borrowed from the client cache)
        self._qps: dict[int, QueuePair] = {}
        #: futures submitted and not yet resolved
        self._inflight: set = set()

    @property
    def name(self) -> str:
        return self.desc.name

    @property
    def size(self) -> int:
        return self.desc.size

    def unmap(self) -> None:
        """Drop the mapping (QPs stay cached client-wide).

        Async ops still in flight fail deterministically with
        :class:`NotMappedError` — their futures resolve at the current
        instant instead of leaving parked processes dangling; late
        completions for their WRs are ignored by the dispatcher.
        """
        self.active = False
        for fut in list(self._inflight):
            fut._fail(NotMappedError(
                f"region {self.name!r} was unmapped with the operation "
                "in flight"
            ))
        rsan = self.client.rsan
        if rsan.enabled:
            # this client is done with the region: drop its shadow
            # intervals so a recycled range is never attributed to it
            rsan.clear_region(self.desc, actor=self.client._rsan_actor)

    # -- blocking data path (submit + wait) ---------------------------------

    def read(self, offset: int, length: int, wire_scale: int = 1):
        """Read bytes (generator) via the staging pool."""
        fut = yield from self.read_async(offset, length,
                                         wire_scale=wire_scale)
        data = yield from fut.wait()
        return data

    def write(self, offset: int, payload: bytes, wire_scale: int = 1):
        """Write bytes (generator) via the staging pool."""
        fut = yield from self.write_async(offset, payload,
                                          wire_scale=wire_scale)
        count = yield from fut.wait()
        return count

    def read_into(self, local_mr: MemoryRegion, local_addr: int,
                  offset: int, length: int, wire_scale: int = 1):
        """Zero-copy read into a caller-registered buffer (generator)."""
        fut = yield from self.read_into_async(
            local_mr, local_addr, offset, length, wire_scale=wire_scale
        )
        yield from fut.wait()

    def write_from(self, local_mr: MemoryRegion, local_addr: int,
                   offset: int, length: int, wire_scale: int = 1):
        """Zero-copy write from a caller-registered buffer (generator)."""
        fut = yield from self.write_from_async(
            local_mr, local_addr, offset, length, wire_scale=wire_scale
        )
        yield from fut.wait()

    def faa(self, offset: int, delta: int, idempotent: bool = False):
        """Remote fetch-and-add on an 8-byte counter (generator).

        Atomics are **not retryable by default**: a completion error on
        an op that reached the NIC raises ``RegionUnavailableError``
        immediately, because the remote side may already have applied
        it — a blind replay could add *delta* twice.  Failures before
        anything hit the wire (dead QP, post rejection) still remap and
        retry transparently; they cannot have side effects.  Pass
        ``idempotent=True`` only when a double-applied op is harmless
        (monotonic flags, advisory stats) to opt back into full
        remap-and-replay.
        """
        fut = yield from self.faa_async(offset, delta, idempotent=idempotent)
        old = yield from fut.wait()
        return old

    def cas(self, offset: int, expected: int, desired: int,
            idempotent: bool = False):
        """Remote compare-and-swap (generator); returns the old value.

        Same retry semantics as :meth:`faa`: completion errors are not
        replayed unless ``idempotent=True`` (a replayed CAS that won
        the first time finds ``desired`` in place and reports a loss).
        """
        fut = yield from self.cas_async(offset, expected, desired,
                                        idempotent=idempotent)
        old = yield from fut.wait()
        return old

    # -- asynchronous data path ---------------------------------------------

    def read_async(self, offset: int, length: int, wire_scale: int = 1):
        """Submit a staged read (generator); returns its future."""
        self._check_usable()
        fut = OpFuture(self.client, self, Opcode.RDMA_READ, "read",
                       offset, length, wire_scale)
        if length == 0:
            fut._resolve(b"")
            return fut
        chunk = yield from self.client._staging.alloc(length)
        fut._chunk = chunk
        try:
            yield from self._submit(fut, chunk.mr, chunk.addr)
        except Exception as exc:
            fut._fail(exc)
            raise
        return fut

    def write_async(self, offset: int, payload: bytes, wire_scale: int = 1):
        """Submit a staged write (generator); returns its future."""
        self._check_usable()
        fut = OpFuture(self.client, self, Opcode.RDMA_WRITE, "write",
                       offset, len(payload), wire_scale)
        if not payload:
            fut._resolve(0)
            return fut
        chunk = yield from self.client._staging.alloc(len(payload))
        fut._chunk = chunk
        yield from self.client.nic.host.cpu.copy(len(payload))
        chunk.write_bytes(payload)
        try:
            yield from self._submit(fut, chunk.mr, chunk.addr)
        except Exception as exc:
            fut._fail(exc)
            raise
        return fut

    def read_into_async(self, local_mr: MemoryRegion, local_addr: int,
                        offset: int, length: int, wire_scale: int = 1):
        """Submit a zero-copy read (generator); returns its future."""
        self._check_usable()
        fut = OpFuture(self.client, self, Opcode.RDMA_READ, "read_into",
                       offset, length, wire_scale)
        if length == 0:
            fut._resolve(None)
            return fut
        try:
            yield from self._submit(fut, local_mr, local_addr)
        except Exception as exc:
            fut._fail(exc)
            raise
        return fut

    def write_from_async(self, local_mr: MemoryRegion, local_addr: int,
                         offset: int, length: int, wire_scale: int = 1):
        """Submit a zero-copy write (generator); returns its future."""
        self._check_usable()
        fut = OpFuture(self.client, self, Opcode.RDMA_WRITE, "write_from",
                       offset, length, wire_scale)
        if length == 0:
            fut._resolve(None)
            return fut
        try:
            yield from self._submit(fut, local_mr, local_addr)
        except Exception as exc:
            fut._fail(exc)
            raise
        return fut

    def faa_async(self, offset: int, delta: int, idempotent: bool = False):
        """Submit a fetch-and-add (generator); returns its future."""
        fut = self._make_atomic(Opcode.ATOMIC_FAA, offset, delta, 0,
                                idempotent)
        try:
            yield from self._submit_atomic(fut)
        except Exception as exc:
            fut._fail(exc)
            raise
        return fut

    def cas_async(self, offset: int, expected: int, desired: int,
                  idempotent: bool = False):
        """Submit a compare-and-swap (generator); returns its future."""
        fut = self._make_atomic(Opcode.ATOMIC_CAS, offset, expected,
                                desired, idempotent)
        try:
            yield from self._submit_atomic(fut)
        except Exception as exc:
            fut._fail(exc)
            raise
        return fut

    # -- internals ---------------------------------------------------------------

    def _check_usable(self):
        if not self.active:
            raise NotMappedError(f"region {self.name!r} is not mapped")

    def _resolve(self):
        """Descriptor for this IO (generator) — fresh under the
        resolve-per-io ablation, cached otherwise."""
        if self.client.config.resolve_per_io:
            desc = yield from self.client._master_call("lookup", self.name)
            return desc
        return self.desc

    def _make_atomic(self, opcode, offset, compare, swap,
                     idempotent) -> OpFuture:
        self._check_usable()
        if offset % 8 != 0:
            raise BoundsError(f"atomic offset {offset} not 8-byte aligned")
        kind = "faa" if opcode is Opcode.ATOMIC_FAA else "cas"
        return OpFuture(self.client, self, opcode, kind, offset, 8,
                        idempotent=idempotent, compare=compare, swap=swap)

    def _submit(self, fut: OpFuture, local_mr, local_addr, batch=None):
        """Plan and post one read/write future (generator).

        Synchronous submissions (``batch is None``) pay the per-op
        issue overhead here and post through the per-QP pump; batched
        ones stage WRs on the batch, which charges the overhead once
        per doorbell instead.
        """
        self._check_usable()
        client = self.client
        span = client.obs.tracer.span("data.client.submit",
                                      trace_id=fut.trace_id, op=fut.kind)
        if batch is None:
            yield from client.nic.host.cpu.run(client.config.issue_overhead_s)
        desc = yield from self._resolve()
        if not desc.available:
            span.finish(ok=False)
            raise RegionUnavailableError(desc.unavailable_reason)
        if client.config.two_sided_data_path:
            self._register(fut)
            client.sim.process(
                self._two_sided_driver(fut, local_mr, local_addr, desc),
                name="two-sided-io",
            )
            span.finish()
            return
        fut.local_mr = local_mr
        self._register(fut)
        pieces = self._plan_pieces(desc, fut.offset, fut.length, local_addr,
                                   fut.wire_scale)
        self._post_pieces(fut, desc, pieces, batch=batch)
        span.finish(pieces=len(pieces))

    def _submit_atomic(self, fut: OpFuture, batch=None):
        """Resolve and post one atomic future (generator)."""
        self._check_usable()
        span = self.client.obs.tracer.span("data.client.submit",
                                           trace_id=fut.trace_id,
                                           op=fut.kind)
        desc = yield from self._resolve()
        if not desc.available:
            span.finish(ok=False)
            raise RegionUnavailableError(desc.unavailable_reason)
        self._register(fut)
        self._post_atomic(fut, desc, batch=batch)
        span.finish()

    def _register(self, fut: OpFuture) -> None:
        self._inflight.add(fut)

    def _plan_pieces(self, desc, offset, length, local_addr, wire_scale):
        # split stripe pieces further so no single WR exceeds the wire
        # chunk ceiling (keeps concurrent flows interleaving fairly)
        chunk = max(1, self.client.config.max_wire_chunk // wire_scale)
        pieces = []
        cursor = local_addr
        for stripe, stripe_off, take in desc.locate(offset, length):
            pos = 0
            while pos < take:
                part = min(chunk, take - pos)
                pieces.append((stripe.index, stripe_off + pos, part, cursor))
                cursor += part
                pos += part
        return pieces

    def _post_pieces(self, fut: OpFuture, desc, pieces, batch=None) -> None:
        """Post (or stage) sub-requests for *pieces* on behalf of *fut*."""
        client = self.client
        plans = []
        total = 0
        for piece in pieces:
            stripe = desc.stripes[piece[0]]
            targets = stripe.replicas if fut.fan_out else (stripe.primary,)
            plans.append((piece, targets))
            total += len(targets)
        # account for the whole round before posting: sub-requests can
        # retire synchronously (dead QP) without ending the round early
        fut._remaining += total
        for piece, targets in plans:
            _index, stripe_off, take, cursor = piece
            for replica in targets:
                qp = self._qps.get(replica.host_id)
                if qp is None or qp.state is not QpState.CONNECTED:
                    fut._sub_aborted(
                        piece,
                        NotMappedError(
                            f"no usable data QP for server {replica.host_id}"
                        ),
                    )
                    continue
                wr = SendWR(
                    opcode=fut.opcode,
                    wr_id=_WrToken([(fut, piece)]),
                    local_mr=fut.local_mr,
                    local_addr=cursor,
                    length=take,
                    remote_addr=replica.addr + stripe_off,
                    rkey=replica.rkey,
                    wire_length=(take * fut.wire_scale
                                 if fut.wire_scale != 1 else None),
                )
                # stamp the descriptor's era (and its shard, so the
                # fence compares against the right epoch sequence) —
                # a server re-donated since we mapped bounces the access
                wr.epoch = desc.epoch
                wr.shard = self.shard
                if fut._rsan is not None:
                    wr.rsan = fut._rsan
                if batch is None:
                    client._pump_for(qp).submit(wr)
                else:
                    batch._stage(qp, wr)

    def _post_atomic(self, fut: OpFuture, desc, batch=None) -> None:
        """Post (or stage) the single sub-request of an atomic future."""
        client = self.client
        pieces = list(desc.locate(fut.offset, 8))
        if len(pieces) != 1:
            fut._fail(BoundsError("atomic target spans a stripe boundary"))
            return
        stripe, stripe_off, _take = pieces[0]
        if stripe.replication > 1:
            fut._fail(RStoreError(
                "atomics on replicated regions are not supported: a "
                "NIC-side atomic cannot be mirrored consistently"
            ))
            return
        fut._remaining += 1
        qp = self._qps.get(stripe.host_id)
        if qp is None or qp.state is not QpState.CONNECTED:
            fut._sub_aborted(
                None,
                NotMappedError(
                    f"no usable data QP for server {stripe.host_id}"
                ),
            )
            return
        wr = SendWR(
            opcode=fut.opcode,
            wr_id=_WrToken([(fut, None)]),
            remote_addr=stripe.addr + stripe_off,
            rkey=stripe.rkey,
            compare=fut.compare,
            swap=fut.swap,
        )
        wr.epoch = desc.epoch
        wr.shard = self.shard
        if fut._rsan is not None:
            wr.rsan = fut._rsan
        if batch is None:
            client._pump_for(qp).submit(wr)
        else:
            batch._stage(qp, wr)

    def _two_sided_driver(self, fut: OpFuture, local_mr, local_addr, desc):
        """Ablation: drive one future through the messaging data path."""
        try:
            yield from self.client._two_sided_io(
                self, fut.opcode, local_mr, local_addr, fut.offset,
                fut.length, desc
            )
        except Exception as exc:
            fut._fail(exc)
            return
        fut._resolve(fut._take_value())

    def _remap_with_backoff(self, attempt: int, immediate: bool = False):
        """Back off, re-``lookup``, rebuild QP tables (generator).

        Backoff is capped exponential with deterministic jitter (the
        client's private :func:`derive_rng` stream), so concurrent
        retriers spread out yet whole simulations stay reproducible.
        ``immediate`` skips the sleep — a fenced (stale-epoch) op is
        not contending for anything, its metadata is just old, so the
        right move is to refresh right away.  Returns the descriptor
        the replay should use; *recoverable* control-path failures keep
        the current one (the next attempt tries again), while fatal
        ones — deadline misses, freed regions — propagate and fail the
        op fast.
        """
        client = self.client
        cfg = client.config
        if not immediate:
            delay = min(
                cfg.retry_backoff_max_s,
                cfg.retry_backoff_base_s * (2 ** (attempt - 1)),
            )
            delay *= 0.5 + client._retry_rng.random()
            yield client.sim.timeout(delay)
        try:
            desc = yield from client._master_call("lookup", self.name)
        except RegionNotFoundError:
            raise  # freed under us: genuinely fatal
        except (RecoverableError, RpcRemoteError):
            return self.desc  # transient master-side failure
        if not desc.available:
            raise RegionUnavailableError(desc.unavailable_reason)
        client._note_epoch(desc.epoch, self.shard)
        client._meta_store(self.name, self.shard, desc)
        try:
            yield from client._ensure_qps(desc, self._qps)
        except RdmaError:
            # a hosting server is unreachable but the master has not
            # noticed yet; keep the old layout and let the next attempt
            # pick up the promoted descriptor
            return self.desc
        self.desc = desc
        return self.desc


class _MetaEntry:
    """One cached region descriptor lease (or negative entry).

    ``epoch`` is the client's *observed epoch of the owning shard* at
    fetch time — not ``desc.epoch``, which records when the region was
    created and is usually older.  An entry is served while the lease
    has not expired and the shard's observed epoch has not moved; an
    epoch bump evicts every lease fetched under the older era, which is
    exactly the "at most one master RPC per epoch per region" contract.
    """

    __slots__ = ("desc", "shard", "epoch", "expires", "error")

    def __init__(self, desc, shard: int, epoch: int, expires: float,
                 error: Optional[Exception] = None):
        self.desc = desc
        self.shard = shard
        self.epoch = epoch
        self.expires = expires
        #: a cached miss: ``map`` re-raises this until the negative TTL
        #: lapses (freshly created regions become visible on re-ask)
        self.error = error


class RStoreClient:
    """One application's connection to the store."""

    def __init__(
        self,
        sim: Simulator,
        nic: RNic,
        cm: ConnectionManager,
        config: Optional[RStoreConfig] = None,
    ):
        self.sim = sim
        self.nic = nic
        self.cm = cm
        self.config = config or RStoreConfig()
        self._pd = None
        self._data_cq = None
        self._staging: Optional[LocalBufferPool] = None
        #: the only path to a master: one cached channel per shard
        self._router = ShardRouter(sim, nic, cm, self.config)
        self._data_qps: dict[int, QueuePair] = {}
        self._pumps: dict[QueuePair, _QpPump] = {}
        self._mem_rpc: dict[int, RpcClient] = {}
        #: lazily built DataPathRouter (see the ``datapath`` property)
        self._datapath = None
        #: bumped on every lazy one-time setup (QP dial, memory-service
        #: channel dial, fetch-buffer allocation) so the adaptive
        #: selector can discard latency samples that paid setup costs
        self.setup_events = 0
        #: deterministic jitter stream for data-path retry backoff
        self._retry_rng = derive_rng(
            self.config.seed, f"rstore-client-{nic.host.host_id}-retry"
        )
        #: futures awaiting remap-and-replay, served FIFO by the worker
        self._retry_queue: deque[OpFuture] = deque()
        self._retry_wakeup = None
        self._resolve_seq = 0
        #: highest epoch observed per shard (descriptor or stats reply);
        #: stamped onto mutating control RPCs for fencing, and the
        #: invalidation signal for the metadata cache
        self._epochs: dict[int, int] = {}
        #: region name -> :class:`_MetaEntry` descriptor lease
        self._meta_cache: dict[str, _MetaEntry] = {}
        #: names with a lookup in flight -> waiter events (single-flight:
        #: concurrent misses coalesce onto one master RPC)
        self._meta_inflight: dict[str, list] = {}
        #: sanitizer context (no-op unless ``config.sanitize``); one
        #: actor per client host
        self.rsan = rsan_for(sim)
        self._rsan_actor = nic.host.host_id
        # -- observability: registry instruments labelled by host; the
        # legacy attribute names live on as read-only properties
        self.obs = obs_for(sim)
        _m = self.obs.metrics
        _host = nic.host.host_id
        self._m_ops_completed = _m.counter("client.ops_completed",
                                           host=_host)
        self._m_bytes_moved = _m.counter("client.bytes_moved", host=_host)
        self._m_retries = _m.counter("client.retries", host=_host)
        self._m_pieces_replayed = _m.counter("client.pieces_replayed",
                                             host=_host)
        self._m_master_calls = _m.counter("client.master_calls", host=_host)
        self._m_retries_fenced = _m.counter("client.retries_fenced",
                                            host=_host)
        self._m_deadlines_missed = _m.counter("client.deadlines_missed",
                                              host=_host)
        self._m_master_redials = _m.counter("client.master_redials",
                                            host=_host)
        self._m_cache_hits = _m.counter("client.metadata_cache_hits",
                                        host=_host)
        self._m_cache_misses = _m.counter("client.metadata_cache_misses",
                                          host=_host)
        self._m_cache_coalesced = _m.counter(
            "client.metadata_cache_coalesced", host=_host
        )

    # -- metrics (registry-backed; see repro.obs) -----------------------------

    @property
    def ops_completed(self) -> int:
        return self._m_ops_completed.value

    @property
    def bytes_moved(self) -> int:
        return self._m_bytes_moved.value

    @property
    def retries(self) -> int:
        return self._m_retries.value

    @property
    def pieces_replayed(self) -> int:
        """Failed pieces re-posted by replay rounds (always < the op's
        total pieces when only part of a batch was hit by a fault)."""
        return self._m_pieces_replayed.value

    @property
    def master_calls(self) -> int:
        """Control-path RPCs issued to the master (alloc, lookup,
        barrier, ...) — the separation thesis says steady-state data
        paths keep this flat; tests assert on it."""
        return self._m_master_calls.value

    @property
    def retries_fenced(self) -> int:
        """Retry rounds triggered by an epoch fence (stale metadata)."""
        return self._m_retries_fenced.value

    @property
    def deadlines_missed(self) -> int:
        """Control calls or data ops that ran out of deadline budget."""
        return self._m_deadlines_missed.value

    @property
    def master_redials(self) -> int:
        """Times the control channel died and was re-established."""
        return self._m_master_redials.value

    @property
    def metadata_cache_hits(self) -> int:
        """``map``-by-name calls served from the descriptor cache."""
        return self._m_cache_hits.value

    @property
    def metadata_cache_misses(self) -> int:
        """``map``-by-name calls that had to ask the owning shard."""
        return self._m_cache_misses.value

    @property
    def metadata_cache_coalesced(self) -> int:
        """Concurrent misses that piggybacked on another's lookup."""
        return self._m_cache_coalesced.value

    @property
    def _epoch(self) -> int:
        """Legacy single-master view: the highest epoch on any shard."""
        return max(self._epochs.values(), default=0)

    def start(self):
        """Connect to the cluster (generator)."""
        self._pd = yield from self.nic.alloc_pd()
        self._data_cq = yield from self.nic.create_cq(depth=1 << 16)
        staging_mr = yield from self.nic.reg_mr(
            self._pd, length=self.config.staging_pool_bytes
        )
        self._staging = LocalBufferPool(self.sim, staging_mr)
        yield from self._router.connect_all()
        self.sim.process(self._completion_dispatcher(), name="client-dispatch")
        self.sim.process(self._retry_worker(), name="client-retry")
        return self

    def batch(self) -> IoBatch:
        """A fresh :class:`IoBatch` bound to this client."""
        return IoBatch(self)

    @property
    def datapath(self):
        """The server-op / remote-fetch router (lazily built).

        Deferred import: ``repro.datapath.router`` imports this module,
        so binding it at first use keeps the import graph acyclic and
        the one-sided-only fast path free of the dependency.
        """
        if self._datapath is None:
            from repro.datapath.router import DataPathRouter

            self._datapath = DataPathRouter(self)
        return self._datapath

    def _mem_channel(self, host_id: int):
        """A connected RPC channel to *host_id*'s memory service
        (generator); cached per host, shared by the two-sided ablation
        and the server-op data path."""
        rpc = self._mem_rpc.get(host_id)
        if rpc is None:
            rpc = RpcClient(self.sim, self.nic, self.cm)
            yield from rpc.connect(host_id, self.config.mem_service)
            self._mem_rpc[host_id] = rpc
            self.setup_events += 1
        return rpc

    def _mem_channel_drop(self, host_id: int) -> None:
        """Forget a dead memory-service channel so the next use redials."""
        self._mem_rpc.pop(host_id, None)

    # -- control path ----------------------------------------------------------

    def _master_call(self, method: str, *args, shard: Optional[int] = None):
        """One control RPC — routed, deadline-bounded, crash-tolerant.

        The owning shard is derived from the method's name argument
        (``_NAME_ROUTED``) unless *shard* pins it explicitly; methods
        without a name (stats, membership) default to shard 0.
        Ordinary control calls get ``control_deadline_s`` of total
        budget: each attempt's RPC timeout is the time left, a dead
        channel triggers a redial of the (possibly restarted) shard,
        and when the budget drains a typed error surfaces instead of
        an unbounded hang — a partitioned client fails fast.
        Coordination rendezvous (barrier/allreduce/wait_note) park at
        the master by design, so they skip the deadline but keep the
        bounded redial.
        """
        if shard is None:
            shard = (self._router.shard_of(args[0])
                     if method in _NAME_ROUTED and args else 0)
        self._m_master_calls.inc()
        rsan = self.rsan
        if rsan.enabled:
            # every control RPC serializes through its single-threaded
            # shard: model it as one coarse release/acquire key per
            # shard.  This over-synchronizes (false negatives only) but
            # keeps the control path free of false positives.
            rsan.sync_release(self._rsan_actor, ("master", shard))
        span = self.obs.tracer.span(f"control.master.{method}",
                                    kind="control",
                                    host=self.nic.host.host_id)
        deadline = (None if method in _BLOCKING_CONTROL
                    else self.sim.now + self.config.control_deadline_s)
        try:
            result = yield from self._call_with_redial(method, args,
                                                       deadline, shard)
        except Exception:
            span.finish(ok=False)
            raise
        span.finish()
        if rsan.enabled:
            rsan.sync_acquire(self._rsan_actor, ("master", shard))
        return result

    def _call_with_redial(self, method: str, args, deadline, shard: int):
        """The attempt loop behind :meth:`_master_call` (generator)."""
        while True:
            timeout = None
            if deadline is not None:
                timeout = deadline - self.sim.now
                if timeout <= 0:
                    self._m_deadlines_missed.inc()
                    raise DeadlineExceededError(
                        f"control call {method!r} missed its "
                        f"{self.config.control_deadline_s}s deadline"
                    )
            try:
                master = yield from self._router.client_for(shard)
                result = yield from master.call(method, *args,
                                                timeout=timeout)
            except RpcTimeout:
                self._m_deadlines_missed.inc()
                raise DeadlineExceededError(
                    f"control call {method!r} missed its "
                    f"{self.config.control_deadline_s}s deadline"
                ) from None
            except RpcRemoteError as exc:
                err = _translated(exc)
                if isinstance(err, MasterUnavailableError):
                    # a zombie handler on a crashed master refused to
                    # commit; redial and try again
                    yield from self._redial_master(deadline, shard)
                    continue
                raise err from None
            except (RdmaError, RpcError, ChannelClosed):
                # channel death: the shard crashed, or we are cut off
                yield from self._redial_master(deadline, shard)
                continue
            return result

    def _redial_master(self, deadline, shard: int = 0):
        """Re-dial one shard's control service (generator).

        Bounded even for deadline-less (blocking) calls — they get a
        redial budget of ``control_deadline_s`` so a master that never
        comes back cannot park a retry loop forever.  Raises
        :class:`MasterUnavailableError` when the budget drains.
        """
        self._m_master_redials.inc()
        cfg = self.config
        if deadline is None:
            deadline = self.sim.now + cfg.control_deadline_s
        try:
            yield from self._router.redial(shard, deadline, self._retry_rng)
        except DeadlineExceededError:
            self._m_deadlines_missed.inc()
            raise MasterUnavailableError(
                "master unreachable within the control deadline"
            ) from None

    def _note_epoch(self, epoch, shard: int = 0) -> None:
        """Track *shard*'s epoch; a bump drops that shard's leases."""
        if epoch is None or epoch <= self._epochs.get(shard, 0):
            return
        self._epochs[shard] = epoch
        stale = [name for name, entry in self._meta_cache.items()
                 if entry.shard == shard and entry.epoch < epoch]
        for name in stale:
            del self._meta_cache[name]

    def _mutate(self, method: str, *args):
        """Epoch-stamped mutating control call (generator).

        The call carries this client's view of the owning shard's
        epoch; a shard that has moved on fences it with
        StaleEpochError.  One refresh-and-retry is built in — the point
        of the fence is to force exactly that refresh, not to fail the
        application.
        """
        shard = self._router.shard_of(args[0])
        try:
            result = yield from self._master_call(
                method, *args, self._epochs.get(shard, 0), shard=shard
            )
        except StaleEpochError:
            self._m_retries_fenced.inc()
            stats = yield from self._master_call("cluster_stats",
                                                 shard=shard)
            self._note_epoch(stats["epoch"], shard)
            result = yield from self._master_call(
                method, *args, self._epochs.get(shard, 0), shard=shard
            )
        return result

    # -- the metadata cache --------------------------------------------------

    def _meta_store(self, name: str, shard: int, desc) -> None:
        """Cache a fresh descriptor under the current observed epoch."""
        if not self.config.metadata_cache:
            return
        if not desc.available:
            # never lease unavailability: callers polling for the
            # region to heal must observe the restored descriptor on
            # their next ask, not a cached refusal
            self._meta_evict(name)
            return
        self._meta_cache[name] = _MetaEntry(
            desc=desc, shard=shard,
            epoch=self._epochs.get(shard, 0),
            expires=self.sim.now + self.config.meta_lease_s,
        )

    def _meta_store_negative(self, name: str, shard: int,
                             as_of: Optional[int] = None) -> None:
        """Cache a miss.  *as_of* is the shard epoch observed when the
        lookup was *issued*, not when it completed: a lookup in flight
        across an epoch bump must be stamped with the old era so the
        bump (already observed by the time the refusal lands) evicts
        it like any other stale lease — otherwise a region created
        under the new era hides behind a cached refusal for the whole
        negative TTL."""
        if not self.config.metadata_cache:
            return
        ttl = self.config.meta_negative_ttl_s
        if ttl <= 0:
            return
        epoch = self._epochs.get(shard, 0) if as_of is None else as_of
        self._meta_cache[name] = _MetaEntry(
            desc=None, shard=shard,
            epoch=epoch,
            expires=self.sim.now + ttl,
            error=RegionNotFoundError(f"no region named {name!r}"),
        )

    def _meta_evict(self, name: str) -> None:
        self._meta_cache.pop(name, None)

    def _meta_resolve(self, name: str):
        """Descriptor for *name* (generator): cache, else one lookup.

        Single-flight: concurrent misses for the same name park on the
        first caller's lookup and share its outcome — 32 clients racing
        a cold name cost the shard exactly one RPC.
        """
        if not self.config.metadata_cache:
            desc = yield from self.lookup(name)
            return desc
        entry = self._meta_cache.get(name)
        if entry is not None and entry.epoch < self._epochs.get(
                entry.shard, 0):
            # stamped under an older era than we have since observed —
            # possible when the entry was stored by a lookup that was
            # already in flight when the bump arrived; serve-time check
            # keeps such a lease from outliving the era it belongs to
            self._meta_evict(name)
            entry = None
        if entry is not None and self.sim.now < entry.expires:
            self._m_cache_hits.inc()
            if entry.error is not None:
                raise entry.error
            return entry.desc
        waiters = self._meta_inflight.get(name)
        if waiters is not None:
            self._m_cache_coalesced.inc()
            event = self.sim.event()
            waiters.append(event)
            desc, exc = yield event
            if exc is not None:
                raise exc
            return desc
        self._m_cache_misses.inc()
        self._meta_inflight[name] = []
        desc, exc = None, None
        try:
            desc = yield from self.lookup(name)
        except Exception as caught:  # noqa: BLE001 - outcome fans out
            exc = caught
        for event in self._meta_inflight.pop(name, ()):
            event.succeed((desc, exc))
        if exc is not None:
            raise exc
        return desc

    def alloc(self, name: str, size: int, stripe_size: Optional[int] = None,
              preferred_host: Optional[int] = None,
              replication: Optional[int] = None):
        """Allocate a named region (generator); returns its descriptor.

        ``preferred_host`` is a locality hint: place the whole region on
        that memory server when it has capacity.  ``replication`` > 1
        keeps that many copies of each stripe on distinct servers.
        """
        desc = yield from self._mutate(
            "alloc", name, size, stripe_size, preferred_host, replication
        )
        shard = self._router.shard_of(name)
        self._note_epoch(desc.epoch, shard)
        self._meta_store(name, shard, desc)
        return desc

    def lookup(self, name: str):
        """Fetch a region descriptor by name (generator).

        Always asks the owning shard — tests and retry loops poll
        ``lookup`` to observe repair progress, so it must never serve a
        cached descriptor.  The reply refreshes the cache for ``map``.
        """
        shard = self._router.shard_of(name)
        # capture the observed epoch *before* the RPC: the refusal (if
        # any) is only valid as of this era — see _meta_store_negative
        as_of = self._epochs.get(shard, 0)
        try:
            desc = yield from self._master_call("lookup", name, shard=shard)
        except RegionNotFoundError:
            self._meta_store_negative(name, shard, as_of=as_of)
            raise
        self._note_epoch(desc.epoch, shard)
        self._meta_store(name, shard, desc)
        return desc

    def resize(self, name: str, new_size: int):
        """Grow a region (generator); returns the new descriptor.

        Existing data is untouched.  Re-map to access the added range —
        live mappings keep working for the old range only.
        """
        desc = yield from self._mutate("resize", name, new_size)
        shard = self._router.shard_of(name)
        self._note_epoch(desc.epoch, shard)
        self._meta_store(name, shard, desc)
        return desc

    def free(self, name: str):
        """Release a region cluster-wide (generator)."""
        result = yield from self._mutate("free", name)
        self._meta_evict(name)
        return result

    def list_regions(self):
        """All region names, across every shard (generator)."""
        if self._router.num_shards == 1:
            names = yield from self._master_call("list_regions")
            return names
        names = []
        for shard in range(self._router.num_shards):
            owned = yield from self._master_call("list_regions", shard=shard)
            names.extend(owned)
        return sorted(names)

    def map(self, region: Union[RegionDesc, str],
            path_policy: Optional[str] = None):
        """Map a region for data-path access (generator).

        Resolves the descriptor (if given a name) — through the leased
        metadata cache, so a warm re-map costs **zero** control RPCs
        until the owning shard's epoch moves — then ensures a connected
        data QP to every hosting server.  QPs are cached across
        mappings, so only first contact with a server pays the
        connection cost.

        ``path_policy`` selects how composite ops over the mapping run
        (``one_sided`` | ``server_op`` | ``remote_fetch`` |
        ``adaptive``); ``None`` takes ``config.datapath_policy``.
        """
        span = self.obs.tracer.span("control.client.map", kind="control",
                                    host=self.nic.host.host_id)
        desc = region
        by_name = isinstance(region, str)
        if by_name:
            try:
                desc = yield from self._meta_resolve(region)
            except Exception:
                span.finish(ok=False)
                raise
        for refreshed in (False, True):
            self._note_epoch(desc.epoch, self._router.shard_of(desc.name))
            if not desc.available:
                span.finish(ok=False)
                raise RegionUnavailableError(desc.unavailable_reason)
            mapping = Mapping(self, desc, path_policy=path_policy)
            try:
                yield from self._ensure_qps(desc, mapping._qps)
            except RdmaError:
                # a hosting server is unreachable; if the descriptor
                # came from the cache it may simply be a stale lease —
                # drop it and ask the owning shard once before failing
                if refreshed or not by_name:
                    span.finish(ok=False)
                    raise
                self._meta_evict(region)
                try:
                    desc = yield from self.lookup(region)
                except Exception:
                    span.finish(ok=False)
                    raise
                continue
            break
        span.finish(region=desc.name, hosts=len(desc.hosts))
        return mapping

    def _ensure_qps(self, desc: RegionDesc, table: dict) -> None:
        """Connected data QP to every host of *desc* (generator).

        Reconnects cached QPs that have gone to ERROR (server death or
        injected fault), so a remap after a retry really gets a usable
        path.  Updates both the client-wide cache and *table*.
        """
        for host_id in desc.hosts:
            qp = self._data_qps.get(host_id)
            if qp is None or qp.state is not QpState.CONNECTED:
                qp = yield from self.cm.connect(
                    self.nic,
                    host_id,
                    self.config.data_service,
                    self._pd,
                    self._data_cq,
                    sq_depth=self.config.data_sq_depth,
                )
                self._data_qps[host_id] = qp
                self.setup_events += 1
            table[host_id] = qp

    def alloc_local(self, length: int):
        """Register a private local buffer for zero-copy IO (generator)."""
        mr = yield from self.nic.reg_mr(self._pd, length=length)
        return mr

    # -- synchronization ----------------------------------------------------------

    def barrier(self, name: str, count: int):
        """Wait at a named cluster barrier (generator)."""
        generation = yield from self._master_call("barrier", name, count)
        return generation

    def allreduce(self, name: str, count: int, value):
        """Sum *value* across *count* participants (generator)."""
        total = yield from self._master_call("allreduce", name, count, value)
        return total

    def notify(self, name: str, payload=None):
        """Publish a named notification (generator)."""
        result = yield from self._master_call("notify", name, payload)
        return result

    def wait_note(self, name: str):
        """Wait for a named notification (generator)."""
        payload = yield from self._master_call("wait_note", name)
        return payload

    # -- internals -------------------------------------------------------------------

    def _next_resolve_index(self) -> int:
        self._resolve_seq += 1
        return self._resolve_seq

    def _pump_for(self, qp: QueuePair) -> _QpPump:
        pump = self._pumps.get(qp)
        if pump is None:
            pump = _QpPump(
                qp,
                window=self.config.data_window_per_qp,
                batch_window=self.config.data_batch_window_per_qp,
            )
            self._pumps[qp] = pump
        return pump

    def _post_batch(self, qp: QueuePair, wrs: list[SendWR]):
        """Post *wrs* in doorbell batches, honouring the pump window.

        Generator: parks on the pump when the batch window is full and
        resumes as completions return credit.  The per-doorbell issue
        overhead is charged here — once per doorbell, not per WR.
        """
        pump = self._pump_for(qp)
        idx = 0
        while idx < len(wrs):
            take = pump.reserve(len(wrs) - idx)
            if take == 0:
                event = self.sim.event()
                pump.waiters.append(event)
                yield event
                continue
            group = wrs[idx:idx + take]
            idx += take
            yield from self.nic.host.cpu.run(self.config.issue_overhead_s)
            self._ring_doorbell(qp, pump, group)

    def _ring_doorbell(self, qp: QueuePair, pump: _QpPump,
                       wrs: list[SendWR]) -> None:
        """One doorbell: selective signaling + atomic admission."""
        tokens = [wr.wr_id for wr in wrs]
        group = _Doorbell(pump, tokens)
        for wr in wrs:
            # atomics stay signaled — their completion carries the
            # fetched value the future resolves with
            wr.signaled = wr.opcode in _ATOMIC_OPS
        wrs[-1].signaled = True
        try:
            qp.post_send_many(wrs)
        except RdmaError as exc:
            # nothing reached the NIC: hand the credit back and fail
            # every carried sub-request so the retry worker replays
            group.credited = True
            pump.credit(len(wrs))
            err = RegionUnavailableError(str(exc))
            for token in tokens:
                token.abort(err)

    def _completion_dispatcher(self):
        """Owns every data-path completion; routes them to futures."""
        tracer = self.obs.tracer
        while True:
            wc = yield self._data_cq.next_completion()
            token = wc.wr_id
            if not isinstance(token, _WrToken):
                continue
            if tracer.enabled:
                raised = getattr(wc, "_obs_raised", None)
                if raised is not None:
                    tracer.record("data.cq.complete", raised,
                                  host=self.nic.host.host_id,
                                  status=wc.status.value)
            group = token.group
            if group is None:
                # synchronous single: one WR, one signaled completion
                pump = self._pumps.get(wc.qp)
                if pump is not None:
                    pump.on_complete()
                if not token.retired:
                    self._retire_token(token, wc)
                continue
            if not token.retired:
                self._retire_token(token, wc)
                if not wc.ok:
                    self._break_group(group, token)
                elif token is group.tokens[-1]:
                    # tail success: in-order delivery proves every
                    # unsignaled WR before it succeeded
                    for t in group.tokens:
                        if not t.retired:
                            self._retire_token(t, None)
            if group.unretired == 0 and not group.credited:
                group.credited = True
                group.pump.credit(len(group.tokens))

    def _retire_token(self, token: _WrToken, wc) -> None:
        """Deliver one token's outcome (*wc*, or ``None`` for success)."""
        token.retired = True
        if token.group is not None:
            token.group.unretired -= 1
        for fut, piece in token.subs:
            if wc is None:
                fut._sub_ok(piece)
            else:
                fut._sub_done(piece, wc)

    def _break_group(self, group: _Doorbell, err_token: _WrToken) -> None:
        """RC flush semantics for a doorbell batch hit by an error.

        In-order delivery means everything posted *before* the failed
        WR already succeeded (an earlier error would have arrived
        first); everything *after* it is flushed — replayable for
        reads/writes, ambiguous for atomics (the NIC may still execute
        flushed WRs remotely).
        """
        idx = group.tokens.index(err_token)
        for token in group.tokens[:idx]:
            if not token.retired:
                self._retire_token(token, None)
        for token in group.tokens[idx + 1:]:
            if token.retired:
                continue
            token.retired = True
            group.unretired -= 1
            for fut, piece in token.subs:
                fut._sub_flushed(piece)

    def _round_done(self, fut: OpFuture) -> None:
        """Every sub-request of *fut*'s current round has retired."""
        if fut.done:
            return
        if fut._failure is None:
            self._settle(fut)
            return
        mapping = fut.mapping
        # ``_last_wc`` is only set when a completion (good or bad) came
        # back — i.e. the request made it onto the wire; a flushed
        # atomic is just as ambiguous
        # a fence NAK means the server refused *before* executing, so a
        # fenced atomic is unambiguous and safe to replay
        if fut.is_atomic and not fut.idempotent and (
                fut._last_wc is not None or fut._flush_ambiguous) and (
                not isinstance(fut._failure, StaleEpochError)):
            err = RegionUnavailableError(
                f"atomic on {mapping.name!r} failed after reaching the "
                f"NIC ({fut._failure}); the remote side may have "
                "applied it, so it is not replayed — pass "
                "idempotent=True to opt into replay"
            )
            err.__cause__ = fut._failure
            fut._fail(err)
            return
        fut._attempts += 1
        if fut.deadline is not None and self.sim.now >= fut.deadline:
            self._m_deadlines_missed.inc()
            err = DeadlineExceededError(
                f"{fut.kind} on {mapping.name!r} missed its "
                f"{self.config.op_deadline_s}s deadline after "
                f"{fut._attempts} attempt(s): {fut._failure}"
            )
            err.__cause__ = fut._failure
            fut._fail(err)
            return
        if fut._attempts > self.config.data_retry_limit:
            kind = ("atomic" if fut.is_atomic
                    else "write" if fut.fan_out else "read")
            err = RegionUnavailableError(
                f"{kind} on {mapping.name!r} failed after "
                f"{fut._attempts} attempts: {fut._failure}"
            )
            err.__cause__ = fut._failure
            fut._fail(err)
            return
        if not mapping.active:
            fut._fail(NotMappedError(
                f"region {mapping.name!r} was unmapped with the "
                "operation in flight"
            ))
            return
        self._retry_queue.append(fut)
        self._wake_retry_worker()

    def _settle(self, fut: OpFuture) -> None:
        self._m_ops_completed.inc()
        if not fut.is_atomic:
            self._m_bytes_moved.inc(fut.length * fut.wire_scale)
        fut._resolve(fut._take_value())

    def _wake_retry_worker(self) -> None:
        if self._retry_wakeup is not None and not self._retry_wakeup.triggered:
            self._retry_wakeup.succeed()

    def _retry_worker(self):
        """Background process: remap-and-replay for failed futures.

        Replays are serialized FIFO, so two failed ops never race the
        mapping's descriptor refresh — and whole simulations stay
        deterministic.
        """
        while True:
            while not self._retry_queue:
                self._retry_wakeup = self.sim.event()
                yield self._retry_wakeup
                self._retry_wakeup = None
            fut = self._retry_queue.popleft()
            if fut.done:
                continue
            yield from self._replay(fut)

    def _replay(self, fut: OpFuture):
        """One remap-and-replay round for *fut* (generator).

        Replays only the failed sub-operations against a refreshed
        descriptor (fan-out can fail a piece on several replicas).
        """
        mapping = fut.mapping
        pieces = list(dict.fromkeys(fut._failed))
        # a fenced op holds stale metadata, not a contended resource:
        # refresh immediately instead of backing off
        fenced = isinstance(fut._failure, StaleEpochError)
        if fenced:
            self._m_retries_fenced.inc()
        fut._failed = []
        fut._failure = None
        fut._last_wc = None
        fut._flush_ambiguous = False
        try:
            desc = yield from mapping._remap_with_backoff(fut._attempts,
                                                          immediate=fenced)
        except Exception as exc:
            fut._fail(exc)
            return
        if fut.done:
            return
        if not mapping.active:
            fut._fail(NotMappedError(
                f"region {mapping.name!r} was unmapped with the "
                "operation in flight"
            ))
            return
        self._m_retries.inc()
        self.obs.tracer.event("data.retry.replay", trace_id=fut.trace_id,
                              op=fut.kind, attempt=fut._attempts)
        if fut.is_atomic:
            mapping._post_atomic(fut, desc)
        else:
            self._m_pieces_replayed.inc(len(pieces))
            mapping._post_pieces(fut, desc, pieces)

    def _two_sided_io(self, mapping: Mapping, opcode, local_mr, local_addr,
                      offset, length, desc):
        """Ablation: data ops through the server CPU over messaging."""
        chunk_limit = max(1024, self.config.msg_size // 2)
        cursor = local_addr
        for stripe, stripe_off, take in desc.locate(offset, length):
            rpc = yield from self._mem_channel(stripe.host_id)
            pos = 0
            while pos < take:
                piece = min(chunk_limit, take - pos)
                remote = stripe.addr + stripe_off + pos
                if opcode is Opcode.RDMA_READ:
                    data = yield from rpc.call("ts_read", remote, piece)
                    local_mr.buffer.write(
                        local_mr.offset_of(cursor + pos), data
                    )
                else:
                    payload = local_mr.buffer.read(
                        local_mr.offset_of(cursor + pos), piece
                    )
                    yield from rpc.call("ts_write", remote, payload)
                pos += piece
            cursor += take
        self._m_ops_completed.inc()
        self._m_bytes_moved.inc(length)
