"""The RStore client library: the memory-like API.

Control path (expensive, infrequent)::

    region = yield from client.alloc("ranks", 64 * MiB)   # master RPC
    mapping = yield from client.map(region)               # connect + cache

Data path (one-sided, no server CPU, no metadata lookups)::

    yield from mapping.write(0, b"...")
    data = yield from mapping.read(0, 4096)
    old = yield from mapping.faa(8, 1)

``map`` resolves everything an IO will ever need — per-stripe server,
remote address, rkey, and a connected QP per server (QPs are cached
client-wide, so mapping a second region to the same servers is nearly
free).  After that every ``read``/``write`` translates to one-sided
RDMA with pure local arithmetic: RDMA's separation philosophy extended
to the cluster.

Failures on the data path are *retryable*: a completion error (server
death, injected NIC fault) makes the mapping re-``lookup`` the region
at the master with capped exponential backoff + deterministic jitter,
rebuild its per-server QP table if the descriptor version advanced
(replica promotion, background repair), and replay only the failed
sub-operations.  An error reaches the application only once
``data_retry_limit`` attempts are exhausted — a single server crash
under ``replication >= 2`` is invisible.

**Atomics are the exception**: reads and writes are idempotent, but a
replayed FAA/CAS whose first attempt *did* apply mutates the word
twice.  ``faa``/``cas`` therefore refuse to replay after a completion
error unless called with ``idempotent=True``; see
:meth:`Mapping.faa`.
"""

from __future__ import annotations

from collections import deque
from typing import Optional, Union

from repro.core.config import RStoreConfig
from repro.core.errors import (
    BoundsError,
    NotMappedError,
    RegionNotFoundError,
    RegionUnavailableError,
    RStoreError,
)
from repro.core.pool import LocalBufferPool
from repro.core.region import RegionDesc
from repro.rdma.cm import ConnectionManager
from repro.rdma.memory import MemoryRegion
from repro.rdma.nic import RNic
from repro.rdma.qp import QueuePair
from repro.rdma.types import Opcode, QpState, RdmaError
from repro.rdma.wr import SendWR
from repro.rpc.endpoint import RpcClient, RpcRemoteError
from repro.simnet.kernel import Simulator
from repro.simnet.rand import derive_rng

__all__ = ["RStoreClient", "Mapping"]

# Remote RStore exceptions re-raise locally as their real types.
import repro.core.errors as _errors

_ERROR_TYPES = {
    name: getattr(_errors, name)
    for name in _errors.__all__
}


def _translated(exc: RpcRemoteError) -> Exception:
    cls = _ERROR_TYPES.get(exc.error_type)
    if cls is not None:
        return cls(exc.remote_message)
    return exc


class _DataOp:
    """Tracks one *round* of sub-requests fanned out for a logical op.

    A piece is ``(stripe_index, stripe_offset, take, local_cursor)`` —
    enough to replay the sub-operation against a *newer* descriptor
    (stripe geometry is immutable; only replica sets change).  The
    round's event always succeeds once every sub-request retires;
    callers inspect :attr:`failure` / :attr:`failed` to decide whether
    to remap and replay.
    """

    __slots__ = ("event", "remaining", "failure", "failed", "last_wc")

    def __init__(self, sim: Simulator, total: int):
        self.event = sim.event()
        self.remaining = total
        self.failure: Optional[Exception] = None
        #: pieces whose sub-request failed (candidates for replay)
        self.failed: list[tuple] = []
        self.last_wc = None

    def sub_done(self, piece, wc) -> None:
        self.last_wc = wc
        if not wc.ok:
            if self.failure is None:
                self.failure = RegionUnavailableError(
                    f"data-path failure: {wc.status.value} {wc.detail}"
                )
            if piece is not None:
                self.failed.append(piece)
        self._retire()

    def sub_aborted(self, piece, exc: Exception) -> None:
        """Retire a sub-request that could not even be posted."""
        if self.failure is None:
            self.failure = exc
        if piece is not None:
            self.failed.append(piece)
        self._retire()

    def _retire(self) -> None:
        self.remaining -= 1
        if self.remaining == 0:
            self.event.succeed()


class _SubOp:
    """The ``wr_id`` of one sub-request: its round plus its piece."""

    __slots__ = ("op", "piece")

    def __init__(self, op: _DataOp, piece):
        self.op = op
        self.piece = piece


class _QpPump:
    """Per-QP submission throttle honouring the send-queue depth."""

    __slots__ = ("qp", "queue", "inflight", "capacity")

    def __init__(self, qp: QueuePair, window: int = 8):
        self.qp = qp
        self.queue: deque[SendWR] = deque()
        self.inflight = 0
        self.capacity = max(1, min(window, qp.sq_depth - 8))

    def submit(self, wr: SendWR) -> None:
        if self.inflight < self.capacity:
            self._post(wr)
        else:
            self.queue.append(wr)

    def on_complete(self) -> None:
        self.inflight -= 1
        while self.queue and self.inflight < self.capacity:
            self._post(self.queue.popleft())

    def _post(self, wr: SendWR) -> None:
        try:
            self.qp.post_send(wr)
            self.inflight += 1
        except RdmaError as exc:
            token: _SubOp = wr.wr_id
            token.op.sub_aborted(token.piece, RegionUnavailableError(str(exc)))


class Mapping:
    """A mapped region: the data-path handle."""

    def __init__(self, client: "RStoreClient", desc: RegionDesc):
        self.client = client
        self.desc = desc
        self.active = True
        #: host_id -> connected data QP (borrowed from the client cache)
        self._qps: dict[int, QueuePair] = {}

    @property
    def name(self) -> str:
        return self.desc.name

    @property
    def size(self) -> int:
        return self.desc.size

    def unmap(self) -> None:
        """Drop the mapping (QPs stay cached client-wide)."""
        self.active = False

    # -- data path ----------------------------------------------------------

    def read(self, offset: int, length: int, wire_scale: int = 1):
        """Read bytes (generator) via the staging pool."""
        chunk = yield from self.client._staging.alloc(length)
        try:
            yield from self.read_into(
                chunk.mr, chunk.addr, offset, length, wire_scale=wire_scale
            )
            data = chunk.read_bytes(length)
        finally:
            chunk.release()
        return data

    def write(self, offset: int, payload: bytes, wire_scale: int = 1):
        """Write bytes (generator) via the staging pool."""
        chunk = yield from self.client._staging.alloc(len(payload))
        try:
            yield from self.client.nic.host.cpu.copy(len(payload))
            chunk.write_bytes(payload)
            yield from self.write_from(
                chunk.mr, chunk.addr, offset, len(payload), wire_scale=wire_scale
            )
        finally:
            chunk.release()
        return len(payload)

    def read_into(self, local_mr: MemoryRegion, local_addr: int,
                  offset: int, length: int, wire_scale: int = 1):
        """Zero-copy read into a caller-registered buffer (generator)."""
        yield from self._one_sided(
            Opcode.RDMA_READ, local_mr, local_addr, offset, length, wire_scale
        )

    def write_from(self, local_mr: MemoryRegion, local_addr: int,
                   offset: int, length: int, wire_scale: int = 1):
        """Zero-copy write from a caller-registered buffer (generator)."""
        yield from self._one_sided(
            Opcode.RDMA_WRITE, local_mr, local_addr, offset, length, wire_scale
        )

    def faa(self, offset: int, delta: int, idempotent: bool = False):
        """Remote fetch-and-add on an 8-byte counter (generator).

        Atomics are **not retryable by default**: a completion error on
        an op that reached the NIC raises ``RegionUnavailableError``
        immediately, because the remote side may already have applied
        it — a blind replay could add *delta* twice.  Failures before
        anything hit the wire (dead QP, post rejection) still remap and
        retry transparently; they cannot have side effects.  Pass
        ``idempotent=True`` only when a double-applied op is harmless
        (monotonic flags, advisory stats) to opt back into full
        remap-and-replay.
        """
        wc = yield from self._atomic(
            Opcode.ATOMIC_FAA, offset, compare=delta, idempotent=idempotent
        )
        return wc.atomic_result

    def cas(self, offset: int, expected: int, desired: int,
            idempotent: bool = False):
        """Remote compare-and-swap (generator); returns the old value.

        Same retry semantics as :meth:`faa`: completion errors are not
        replayed unless ``idempotent=True`` (a replayed CAS that won
        the first time finds ``desired`` in place and reports a loss).
        """
        wc = yield from self._atomic(
            Opcode.ATOMIC_CAS, offset, compare=expected, swap=desired,
            idempotent=idempotent,
        )
        return wc.atomic_result

    # -- internals ---------------------------------------------------------------

    def _check_usable(self):
        if not self.active:
            raise NotMappedError(f"region {self.name!r} is not mapped")

    def _resolve(self):
        """Descriptor for this IO (generator) — fresh under the
        resolve-per-io ablation, cached otherwise."""
        if self.client.config.resolve_per_io:
            desc = yield from self.client._master_call("lookup", self.name)
            return desc
        return self.desc

    def _one_sided(self, opcode, local_mr, local_addr, offset, length,
                   wire_scale):
        self._check_usable()
        if length == 0:
            return
        yield from self.client.nic.host.cpu.run(
            self.client.config.issue_overhead_s
        )
        desc = yield from self._resolve()
        if not desc.available:
            raise RegionUnavailableError(desc.unavailable_reason)
        if self.client.config.two_sided_data_path:
            yield from self.client._two_sided_io(
                self, opcode, local_mr, local_addr, offset, length, desc
            )
            return
        # split stripe pieces further so no single WR exceeds the wire
        # chunk ceiling (keeps concurrent flows interleaving fairly)
        chunk = max(1, self.client.config.max_wire_chunk // wire_scale)
        pending = []
        cursor = local_addr
        for stripe, stripe_off, take in desc.locate(offset, length):
            pos = 0
            while pos < take:
                part = min(chunk, take - pos)
                pending.append((stripe.index, stripe_off + pos, part, cursor))
                cursor += part
                pos += part
        # writes must land on every replica; reads hit only the primary
        fan_out = opcode is Opcode.RDMA_WRITE
        attempts = 0
        while True:
            op = self._issue_round(
                desc, opcode, local_mr, pending, fan_out, wire_scale
            )
            yield op.event
            if op.failure is None:
                break
            attempts += 1
            if attempts > self.client.config.data_retry_limit:
                raise RegionUnavailableError(
                    f"{'write' if fan_out else 'read'} on {self.name!r} "
                    f"failed after {attempts} attempts: {op.failure}"
                ) from op.failure
            # replay only the failed sub-operations against a refreshed
            # descriptor (fan-out can fail a piece on several replicas)
            pending = list(dict.fromkeys(op.failed))
            desc = yield from self._remap_with_backoff(attempts)
            self.client.retries += 1
        self.client.ops_completed += 1
        self.client.bytes_moved += length * wire_scale

    def _issue_round(self, desc, opcode, local_mr, pieces, fan_out,
                     wire_scale) -> _DataOp:
        """Post one round of sub-requests for *pieces*; returns its op."""
        plans = []
        total = 0
        for piece in pieces:
            stripe = desc.stripes[piece[0]]
            targets = stripe.replicas if fan_out else (stripe.primary,)
            plans.append((piece, targets))
            total += len(targets)
        op = _DataOp(self.client.sim, total)
        for piece, targets in plans:
            _index, stripe_off, take, cursor = piece
            for replica in targets:
                qp = self._qps.get(replica.host_id)
                if qp is None or qp.state is not QpState.CONNECTED:
                    op.sub_aborted(
                        piece,
                        NotMappedError(
                            f"no usable data QP for server {replica.host_id}"
                        ),
                    )
                    continue
                wr = SendWR(
                    opcode=opcode,
                    wr_id=_SubOp(op, piece),
                    local_mr=local_mr,
                    local_addr=cursor,
                    length=take,
                    remote_addr=replica.addr + stripe_off,
                    rkey=replica.rkey,
                    wire_length=take * wire_scale if wire_scale != 1 else None,
                )
                self.client._pump_for(qp).submit(wr)
        return op

    def _remap_with_backoff(self, attempt: int):
        """Back off, re-``lookup``, rebuild QP tables (generator).

        Backoff is capped exponential with deterministic jitter (the
        client's private :func:`derive_rng` stream), so concurrent
        retriers spread out yet whole simulations stay reproducible.
        Returns the descriptor the replay should use; transient
        control-path failures keep the current one (the next attempt
        tries again).
        """
        client = self.client
        cfg = client.config
        delay = min(
            cfg.retry_backoff_max_s,
            cfg.retry_backoff_base_s * (2 ** (attempt - 1)),
        )
        delay *= 0.5 + client._retry_rng.random()
        yield client.sim.timeout(delay)
        try:
            desc = yield from client._master_call("lookup", self.name)
        except RegionNotFoundError:
            raise  # freed under us: genuinely fatal
        except (RStoreError, RpcRemoteError):
            return self.desc  # transient master-side failure
        if not desc.available:
            raise RegionUnavailableError(desc.unavailable_reason)
        try:
            yield from client._ensure_qps(desc, self._qps)
        except RdmaError:
            # a hosting server is unreachable but the master has not
            # noticed yet; keep the old layout and let the next attempt
            # pick up the promoted descriptor
            return self.desc
        self.desc = desc
        return self.desc

    def _atomic(self, opcode, offset, compare=0, swap=0, idempotent=False):
        """One remote atomic (generator); see :meth:`faa` for retry rules.

        A failed attempt is *replayable* only if the request provably
        never reached the wire (no work completion: the QP was dead or
        the post was rejected locally).  Once a completion error comes
        back, the NIC-side outcome is unknowable — unless the caller
        declared the op idempotent, the error surfaces immediately.
        """
        self._check_usable()
        if offset % 8 != 0:
            raise BoundsError(f"atomic offset {offset} not 8-byte aligned")
        desc = yield from self._resolve()
        if not desc.available:
            raise RegionUnavailableError(desc.unavailable_reason)
        attempts = 0
        while True:
            pieces = list(desc.locate(offset, 8))
            if len(pieces) != 1:
                raise BoundsError("atomic target spans a stripe boundary")
            stripe, stripe_off, _take = pieces[0]
            if stripe.replication > 1:
                raise RStoreError(
                    "atomics on replicated regions are not supported: a "
                    "NIC-side atomic cannot be mirrored consistently"
                )
            op = _DataOp(self.client.sim, 1)
            qp = self._qps.get(stripe.host_id)
            if qp is None or qp.state is not QpState.CONNECTED:
                op.sub_aborted(
                    None,
                    NotMappedError(
                        f"no usable data QP for server {stripe.host_id}"
                    ),
                )
            else:
                self.client._pump_for(qp).submit(
                    SendWR(
                        opcode=opcode,
                        wr_id=_SubOp(op, None),
                        remote_addr=stripe.addr + stripe_off,
                        rkey=stripe.rkey,
                        compare=compare,
                        swap=swap,
                    )
                )
            yield op.event
            if op.failure is None:
                self.client.ops_completed += 1
                return op.last_wc
            # ``last_wc`` is only set when a completion (good or bad)
            # came back — i.e. the request made it onto the wire
            if op.last_wc is not None and not idempotent:
                raise RegionUnavailableError(
                    f"atomic on {self.name!r} failed after reaching the "
                    f"NIC ({op.failure}); the remote side may have "
                    "applied it, so it is not replayed — pass "
                    "idempotent=True to opt into replay"
                ) from op.failure
            attempts += 1
            if attempts > self.client.config.data_retry_limit:
                raise RegionUnavailableError(
                    f"atomic on {self.name!r} failed after {attempts} "
                    f"attempts: {op.failure}"
                ) from op.failure
            desc = yield from self._remap_with_backoff(attempts)
            self.client.retries += 1


class RStoreClient:
    """One application's connection to the store."""

    def __init__(
        self,
        sim: Simulator,
        nic: RNic,
        cm: ConnectionManager,
        config: Optional[RStoreConfig] = None,
    ):
        self.sim = sim
        self.nic = nic
        self.cm = cm
        self.config = config or RStoreConfig()
        self._pd = None
        self._data_cq = None
        self._staging: Optional[LocalBufferPool] = None
        self._master: Optional[RpcClient] = None
        self._data_qps: dict[int, QueuePair] = {}
        self._pumps: dict[QueuePair, _QpPump] = {}
        self._mem_rpc: dict[int, RpcClient] = {}
        #: deterministic jitter stream for data-path retry backoff
        self._retry_rng = derive_rng(
            self.config.seed, f"rstore-client-{nic.host.host_id}-retry"
        )
        # -- metrics
        self.ops_completed = 0
        self.bytes_moved = 0
        self.retries = 0
        #: control-path RPCs issued to the master (alloc, lookup,
        #: barrier, ...) — the separation thesis says steady-state data
        #: paths keep this flat; tests assert on it
        self.master_calls = 0

    def start(self):
        """Connect to the cluster (generator)."""
        self._pd = yield from self.nic.alloc_pd()
        self._data_cq = yield from self.nic.create_cq(depth=1 << 16)
        staging_mr = yield from self.nic.reg_mr(
            self._pd, length=self.config.staging_pool_bytes
        )
        self._staging = LocalBufferPool(self.sim, staging_mr)
        self._master = RpcClient(self.sim, self.nic, self.cm)
        yield from self._master.connect(
            self.config.master_host, self.config.master_service
        )
        self.sim.process(self._completion_dispatcher(), name="client-dispatch")
        return self

    # -- control path ----------------------------------------------------------

    def _master_call(self, method: str, *args):
        self.master_calls += 1
        try:
            result = yield from self._master.call(method, *args)
        except RpcRemoteError as exc:
            raise _translated(exc) from None
        return result

    def alloc(self, name: str, size: int, stripe_size: Optional[int] = None,
              preferred_host: Optional[int] = None,
              replication: Optional[int] = None):
        """Allocate a named region (generator); returns its descriptor.

        ``preferred_host`` is a locality hint: place the whole region on
        that memory server when it has capacity.  ``replication`` > 1
        keeps that many copies of each stripe on distinct servers.
        """
        desc = yield from self._master_call(
            "alloc", name, size, stripe_size, preferred_host, replication
        )
        return desc

    def lookup(self, name: str):
        """Fetch a region descriptor by name (generator)."""
        desc = yield from self._master_call("lookup", name)
        return desc

    def resize(self, name: str, new_size: int):
        """Grow a region (generator); returns the new descriptor.

        Existing data is untouched.  Re-map to access the added range —
        live mappings keep working for the old range only.
        """
        desc = yield from self._master_call("resize", name, new_size)
        return desc

    def free(self, name: str):
        """Release a region cluster-wide (generator)."""
        result = yield from self._master_call("free", name)
        return result

    def list_regions(self):
        """All region names (generator)."""
        names = yield from self._master_call("list_regions")
        return names

    def map(self, region: Union[RegionDesc, str]):
        """Map a region for data-path access (generator).

        Resolves the descriptor (if given a name), then ensures a
        connected data QP to every hosting server.  QPs are cached
        across mappings, so only first contact with a server pays the
        connection cost.
        """
        desc = region
        if isinstance(region, str):
            desc = yield from self.lookup(region)
        if not desc.available:
            raise RegionUnavailableError(desc.unavailable_reason)
        mapping = Mapping(self, desc)
        yield from self._ensure_qps(desc, mapping._qps)
        return mapping

    def _ensure_qps(self, desc: RegionDesc, table: dict) -> None:
        """Connected data QP to every host of *desc* (generator).

        Reconnects cached QPs that have gone to ERROR (server death or
        injected fault), so a remap after a retry really gets a usable
        path.  Updates both the client-wide cache and *table*.
        """
        for host_id in desc.hosts:
            qp = self._data_qps.get(host_id)
            if qp is None or qp.state is not QpState.CONNECTED:
                qp = yield from self.cm.connect(
                    self.nic,
                    host_id,
                    self.config.data_service,
                    self._pd,
                    self._data_cq,
                    sq_depth=self.config.data_sq_depth,
                )
                self._data_qps[host_id] = qp
            table[host_id] = qp

    def alloc_local(self, length: int):
        """Register a private local buffer for zero-copy IO (generator)."""
        mr = yield from self.nic.reg_mr(self._pd, length=length)
        return mr

    # -- synchronization ----------------------------------------------------------

    def barrier(self, name: str, count: int):
        """Wait at a named cluster barrier (generator)."""
        generation = yield from self._master_call("barrier", name, count)
        return generation

    def allreduce(self, name: str, count: int, value):
        """Sum *value* across *count* participants (generator)."""
        total = yield from self._master_call("allreduce", name, count, value)
        return total

    def notify(self, name: str, payload=None):
        """Publish a named notification (generator)."""
        result = yield from self._master_call("notify", name, payload)
        return result

    def wait_note(self, name: str):
        """Wait for a named notification (generator)."""
        payload = yield from self._master_call("wait_note", name)
        return payload

    # -- internals -------------------------------------------------------------------

    def _pump_for(self, qp: QueuePair) -> _QpPump:
        pump = self._pumps.get(qp)
        if pump is None:
            pump = _QpPump(qp, window=self.config.data_window_per_qp)
            self._pumps[qp] = pump
        return pump

    def _completion_dispatcher(self):
        while True:
            wc = yield self._data_cq.next_completion()
            pump = self._pumps.get(wc.qp)
            if pump is not None:
                pump.on_complete()
            token = wc.wr_id
            if isinstance(token, _SubOp):
                token.op.sub_done(token.piece, wc)

    def _two_sided_io(self, mapping: Mapping, opcode, local_mr, local_addr,
                      offset, length, desc):
        """Ablation: data ops through the server CPU over messaging."""
        chunk_limit = max(1024, self.config.msg_size // 2)
        cursor = local_addr
        for stripe, stripe_off, take in desc.locate(offset, length):
            rpc = self._mem_rpc.get(stripe.host_id)
            if rpc is None:
                rpc = RpcClient(self.sim, self.nic, self.cm)
                yield from rpc.connect(stripe.host_id, self.config.mem_service)
                self._mem_rpc[stripe.host_id] = rpc
            pos = 0
            while pos < take:
                piece = min(chunk_limit, take - pos)
                remote = stripe.addr + stripe_off + pos
                if opcode is Opcode.RDMA_READ:
                    data = yield from rpc.call("ts_read", remote, piece)
                    local_mr.buffer.write(
                        local_mr.offset_of(cursor + pos), data
                    )
                else:
                    payload = local_mr.buffer.read(
                        local_mr.offset_of(cursor + pos), piece
                    )
                    yield from rpc.call("ts_write", remote, payload)
                pos += piece
            cursor += take
        self.ops_completed += 1
        self.bytes_moved += length
