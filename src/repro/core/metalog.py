"""Write-ahead metadata log + checkpoint for the control plane.

The master's metadata — region descriptors, server membership, the
cluster epoch — must survive a master crash.  :class:`MetaLog` models
the durable medium (in a real deployment an NVMe log or a replicated
metadata region shipped over one-sided writes, per the LSM
index-replication line of work): the master *appends* a record for
every mutating control RPC **before** replying, and a restarted master
*replays* checkpoint + tail to rebuild its state.

Durability discipline:

* Records are serialized at append time (``pickle.dumps``), never kept
  as live object references — a replayed record reflects the state at
  the moment of the append, not whatever the master mutated later.
  That is what makes "append before reply" a real commit point.
* ``append`` is a generator charging :attr:`RStoreConfig.metalog_append_s`
  of simulated latency — the fsync the control RPC pays.
* Every ``metalog_checkpoint_every`` appends the master serializes its
  full state and truncates the tail, bounding replay time.

Record kinds (``kind``, payload):

* ``"region"``  — full :class:`~repro.core.region.RegionDesc` snapshot;
  upsert on replay (alloc, resize, promotion, repair all emit this).
* ``"free"``    — region name; delete on replay.
* ``"server"``  — ``(host_id, capacity, rkey, epoch, alive)`` membership
  snapshot; upsert on replay (register and declare-dead both emit it).
* ``"epoch"``   — the new cluster epoch (bumped on recovery and death).
* ``"note"``    — ``(name, payload)`` published notification; upsert on
  replay (rendezvous metadata like ``kv.<name>.meta`` must survive a
  master crash or every later ``open`` waits forever).
"""

from __future__ import annotations

import pickle
from dataclasses import dataclass, field
from typing import Any

__all__ = ["MetaLog", "RecoveredState"]


@dataclass
class RecoveredState:
    """What a restarting master learns from checkpoint + log replay."""

    #: region name -> RegionDesc (deserialized snapshots, safe to mutate)
    regions: dict = field(default_factory=dict)
    #: host_id -> (capacity, rkey, epoch, alive) membership snapshots
    servers: dict = field(default_factory=dict)
    #: last logged cluster epoch
    epoch: int = 0
    #: first region id the restarted master may hand out
    next_region_id: int = 1
    #: name -> payload published notifications
    notes: dict = field(default_factory=dict)


class MetaLog:
    """The durable metadata log.  Owned by the cluster, outlives masters."""

    def __init__(self, sim, append_latency_s: float = 5e-6,
                 checkpoint_every: int = 64):
        self.sim = sim
        self.append_latency_s = append_latency_s
        self.checkpoint_every = checkpoint_every
        self._checkpoint: bytes | None = None
        self._tail: list[bytes] = []
        # counters for tests and the recovery benchmark
        self.appends = 0
        self.checkpoints = 0
        self.replays = 0

    def __len__(self) -> int:
        return len(self._tail)

    def append(self, kind: str, payload: Any):
        """Durably append one record (generator; charges fsync latency).

        The record is serialized *now*: later mutation of the payload
        object cannot reach the log.
        """
        record = pickle.dumps((kind, payload))
        yield self.sim.timeout(self.append_latency_s)
        self._tail.append(record)
        self.appends += 1

    def maybe_checkpoint(self, state: RecoveredState):
        """Checkpoint + truncate once the tail is long enough (generator)."""
        if len(self._tail) < self.checkpoint_every:
            return
        snapshot = pickle.dumps(state)
        # a checkpoint is a full-state write: charge one append per
        # region so big clusters pay proportionally
        cost = self.append_latency_s * max(1, len(state.regions))
        yield self.sim.timeout(cost)
        self._checkpoint = snapshot
        self._tail.clear()
        self.checkpoints += 1

    def replay(self) -> RecoveredState:
        """Rebuild master state from checkpoint + tail (pure, no latency;
        the restarted master charges recovery time elsewhere)."""
        self.replays += 1
        if self._checkpoint is not None:
            state: RecoveredState = pickle.loads(self._checkpoint)
        else:
            state = RecoveredState()
        for raw in self._tail:
            kind, payload = pickle.loads(raw)
            if kind == "region":
                state.regions[payload.name] = payload
            elif kind == "free":
                state.regions.pop(payload, None)
            elif kind == "server":
                host_id, capacity, rkey, epoch, alive = payload
                state.servers[host_id] = (capacity, rkey, epoch, alive)
            elif kind == "epoch":
                state.epoch = max(state.epoch, payload)
            elif kind == "note":
                name, note = payload
                state.notes[name] = note
            else:  # pragma: no cover - corrupt log
                raise ValueError(f"unknown metalog record kind {kind!r}")
        if state.regions:
            state.next_region_id = max(
                state.next_region_id,
                1 + max(r.region_id for r in state.regions.values()),
            )
        return state
