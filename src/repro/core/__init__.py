"""RStore: the paper's primary contribution.

A DRAM-based distributed data store whose API is memory-like —
``alloc`` / ``map`` / ``read`` / ``write`` / atomics over named,
byte-addressable regions striped across memory servers — and whose
implementation extends RDMA's separation philosophy to the cluster:
every expensive step (naming, placement, registration, connection
setup) happens on the control path at ``alloc``/``map`` time, leaving
the data path as pure one-sided RDMA with no server CPU involvement
and no metadata lookups.

Components: :class:`~repro.core.master.Master` (namespace, placement,
liveness, synchronization), :class:`~repro.core.server.MemoryServer`
(pre-registered DRAM arenas), and :class:`~repro.core.client.RStoreClient`
(the application-facing library).
"""

from repro.core.client import IoBatch, Mapping, OpFuture, RStoreClient
from repro.core.config import RStoreConfig
from repro.core.errors import (
    AllocationError,
    BoundsError,
    NotMappedError,
    OutOfMemoryError,
    RegionExistsError,
    RegionNotFoundError,
    RegionUnavailableError,
    RStoreError,
)
from repro.core.master import Master
from repro.core.region import RegionDesc, StripeDesc, StripeReplica
from repro.core.repair import RepairPlanner, RepairTask
from repro.core.server import MemoryServer

__all__ = [
    "AllocationError",
    "BoundsError",
    "IoBatch",
    "Mapping",
    "Master",
    "MemoryServer",
    "NotMappedError",
    "OpFuture",
    "OutOfMemoryError",
    "RStoreClient",
    "RStoreConfig",
    "RStoreError",
    "RegionDesc",
    "RegionExistsError",
    "RegionNotFoundError",
    "RegionUnavailableError",
    "RepairPlanner",
    "RepairTask",
    "StripeDesc",
    "StripeReplica",
]
