"""Control-plane sharding: the shard map, tenancy, and the shard router.

The control plane is partitioned into ``config.control_shards``
metadata shards.  Each shard is a full :class:`~repro.core.master.Master`
— its own namespace slice, metalog WAL, epoch, lease table, and repair
planner — listening on its own service id.  Region names are
*namespace-qualified*: ``"<tenant>/<name>"`` scopes a region to a
tenant, and bare names belong to the :data:`DEFAULT_TENANT`.

Addressing is consistent hashing over the full qualified name: each
shard owns a set of virtual points on a 64-bit ring, and a name maps to
the shard owning the first point at or after its hash.  The ring is
seeded from nothing but the shard count, so every client, server and
master derives the identical map with no exchange — and growing the
shard count moves only the keys between the new points, not the whole
namespace.

The :class:`ShardRouter` is the **only** legal way to dial a master
endpoint from outside ``core/master.py`` (repro-lint RL006 enforces
this).  It caches one control :class:`~repro.rpc.endpoint.RpcClient`
per shard, routes by name, and owns the deadline-bounded redial loop
that crash recovery leans on.
"""

from __future__ import annotations

import hashlib
from bisect import bisect_left
from typing import TYPE_CHECKING, Optional

from repro.core.errors import DeadlineExceededError
from repro.coord.base import Backoff
from repro.rdma.types import RdmaError
from repro.rpc.channel import ChannelClosed
from repro.rpc.endpoint import RpcClient, RpcError

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.config import RStoreConfig
    from repro.rdma.cm import ConnectionManager
    from repro.rdma.nic import RNic
    from repro.simnet.kernel import Simulator

__all__ = [
    "DEFAULT_TENANT",
    "ShardMap",
    "ShardRouter",
    "shard_service",
    "split_quota",
    "tenant_of",
]

#: tenant owning bare (un-prefixed) region names
DEFAULT_TENANT = "default"

#: virtual ring points per shard — enough to keep the key split within
#: a few percent of even at 8 shards, cheap enough to rebuild anywhere
_VNODES = 64


def tenant_of(name: str) -> str:
    """The tenant a qualified region name belongs to.

    ``"acme/ledger"`` → ``"acme"``; a bare ``"ledger"`` belongs to the
    default tenant.  Only the first ``/`` splits — tenants may nest
    further namespace structure after it.
    """
    tenant, sep, rest = name.partition("/")
    if sep and tenant and rest:
        return tenant
    return DEFAULT_TENANT


def shard_service(base: str, shard_id: int) -> str:
    """The fabric service id of one metadata shard.

    Shard 0 keeps the bare service name, so a single-shard deployment
    is wire-identical to the pre-sharding control plane.
    """
    return base if shard_id == 0 else f"{base}.{shard_id}"


def _point(label: str) -> int:
    """A deterministic 64-bit ring coordinate for *label*."""
    return int.from_bytes(
        hashlib.blake2b(label.encode(), digest_size=8).digest(), "big"
    )


class ShardMap:
    """Consistent hashing of qualified region names onto shards.

    Pure arithmetic over the shard count — no I/O, no state to gossip.
    Every participant holding the same ``num_shards`` computes the same
    map, which is what lets clients route without asking anyone.
    """

    def __init__(self, num_shards: int):
        if num_shards < 1:
            raise ValueError(f"need at least one shard, got {num_shards}")
        self.num_shards = num_shards
        ring = []
        for shard in range(num_shards):
            for vnode in range(_VNODES):
                ring.append((_point(f"shard-{shard}-vnode-{vnode}"), shard))
        ring.sort()
        self._points = [p for p, _s in ring]
        self._owners = [s for _p, s in ring]

    def shard_of(self, name: str) -> int:
        """The shard owning *name* (qualified or bare)."""
        if self.num_shards == 1:
            return 0
        idx = bisect_left(self._points, _point(name))
        if idx == len(self._points):
            idx = 0  # wrap: past the last point, the ring starts over
        return self._owners[idx]

    def names_owned(self, names, shard_id: int) -> list[str]:
        """Filter *names* down to the ones *shard_id* owns (sorted)."""
        return sorted(n for n in names if self.shard_of(n) == shard_id)


class ShardRouter:
    """Per-host control-plane stub: one cached channel per shard.

    Both the client library and the memory servers dial masters only
    through here.  The router knows nothing about what the RPCs mean —
    retry/deadline policy above the dial stays with its callers.
    """

    def __init__(self, sim: "Simulator", nic: "RNic",
                 cm: "ConnectionManager", config: "RStoreConfig"):
        self.sim = sim
        self.nic = nic
        self.cm = cm
        self.config = config
        self.map = ShardMap(config.control_shards)
        self._clients: dict[int, RpcClient] = {}

    @property
    def num_shards(self) -> int:
        return self.map.num_shards

    def shard_of(self, name: str) -> int:
        return self.map.shard_of(name)

    def client_for(self, shard_id: int):
        """The cached control channel to *shard_id*, dialing on first
        use (generator)."""
        client = self._clients.get(shard_id)
        if client is None:
            client = RpcClient(self.sim, self.nic, self.cm)
            yield from client.connect(
                self.config.master_host,
                shard_service(self.config.master_service, shard_id),
            )
            self._clients[shard_id] = client
        return client

    def connect_all(self):
        """Eagerly dial every shard (generator) — boot-time warm-up so
        steady state never pays a control handshake."""
        for shard_id in range(self.num_shards):
            yield from self.client_for(shard_id)

    def drop(self, shard_id: int) -> None:
        """Forget a dead channel so the next call re-dials."""
        self._clients.pop(shard_id, None)

    def redial(self, shard_id: int, deadline: float, rng):
        """Re-establish the channel to *shard_id* (generator).

        Retries with jittered backoff until *deadline*; raises
        :class:`DeadlineExceededError` when the budget drains.  The
        fresh channel replaces the cached one on success.
        """
        cfg = self.config
        self.drop(shard_id)
        backoff = Backoff(
            self.sim, rng,
            base_s=cfg.retry_backoff_base_s,
            max_s=cfg.retry_backoff_max_s,
            deadline=deadline,
        )
        service = shard_service(cfg.master_service, shard_id)
        while True:
            yield from backoff.pause()  # raises DeadlineExceededError
            client = RpcClient(self.sim, self.nic, self.cm)
            try:
                yield from client.connect(cfg.master_host, service)
            except (RdmaError, RpcError, ChannelClosed):
                if self.sim.now >= deadline:
                    raise DeadlineExceededError(
                        f"could not re-dial control shard {shard_id}"
                    ) from None
                continue
            self._clients[shard_id] = client
            return client


def split_quota(quota: Optional[int], num_shards: int,
                shard_id: int = 0) -> Optional[int]:
    """*shard_id*'s capacity share of a tenant's cluster-wide quota.

    Each shard enforces quotas against its own accounting, so a
    cluster-wide budget is divided across shards.  The split is an
    exact partition: the remainder bytes go to the lowest-numbered
    shards one byte each, so ``sum(split_quota(q, n, s) for s in
    range(n)) == q`` — the fleet can never admit more than the
    cluster-wide budget in aggregate, and never less than it when a
    tenant spreads evenly.  ``None`` (unlimited) stays unlimited.
    """
    if quota is None:
        return None
    base, extra = divmod(quota, num_shards)
    return base + (1 if shard_id < extra else 0)
