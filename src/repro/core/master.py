"""The RStore master: names, allocation, liveness, synchronization.

The master is pure control path.  It owns the namespace (name → region
descriptor), places stripes across memory servers, drives server-side
reservations, and watches server leases.  It also exposes small
synchronization primitives (barriers, notifications) that the paper's
applications use to coordinate — all RPC, none of it ever on the data
path.

Sharding (see DESIGN.md "Partitioned control plane"): a deployment
runs ``config.control_shards`` master instances, each one **shard** of
the metadata namespace addressed by consistent hashing over qualified
region names (``core/shard.py``).  Every shard owns its own metalog,
epoch, lease table and repair planner, so one shard crashing and
recovering never stalls the names the others own.  Shards also enforce
per-tenant capacity quotas against their slice of the namespace.

Crash recovery (see DESIGN.md "Crash recovery & fencing"): every
mutating control RPC appends to a write-ahead :class:`MetaLog` before
replying — the append is the commit point.  A restarted master replays
checkpoint + log, bumps the cluster *epoch*, waits a grace period for
servers to re-register (their arenas are intact; only the master's
memory was lost), declares the stragglers dead, and re-queues any
repair that was in flight.  Stale-epoch control RPCs and one-sided ops
are fenced with :class:`StaleEpochError`.
"""

from __future__ import annotations

from typing import Optional

from repro.core.allocator import ServerSlot, StripeAllocator
from repro.core.config import RStoreConfig
from repro.core.errors import (
    AllocationError,
    MasterUnavailableError,
    RegionExistsError,
    RegionNotFoundError,
    RStoreError,
    StaleEpochError,
    TenantQuotaExceededError,
)
from repro.core.metalog import MetaLog, RecoveredState
from repro.core.region import (
    RegionDesc,
    StripeDesc,
    StripeReplica,
    split_into_stripes,
)
from repro.core.repair import RepairPlanner
from repro.core.shard import (
    ShardMap,
    shard_service,
    split_quota,
    tenant_of,
)
from repro.obs import obs_for
from repro.rdma.cm import ConnectionManager
from repro.rdma.nic import RNic
from repro.rpc.endpoint import RpcClient, RpcServer
from repro.sanitize import rsan_for
from repro.simnet.kernel import Simulator

__all__ = ["Master"]


class Master:
    """The metadata and coordination service."""

    def __init__(
        self,
        sim: Simulator,
        nic: RNic,
        cm: ConnectionManager,
        config: Optional[RStoreConfig] = None,
        metalog: Optional[MetaLog] = None,
        shard_id: int = 0,
    ):
        self.sim = sim
        self.nic = nic
        self.cm = cm
        self.config = config or RStoreConfig()
        #: which metadata shard this instance is (0 in the single-master
        #: deployment); decides namespace ownership and the service id
        self.shard_id = shard_id
        self.shard_map = ShardMap(self.config.control_shards)
        if not 0 <= shard_id < self.shard_map.num_shards:
            raise ValueError(
                f"shard_id {shard_id} out of range for "
                f"{self.shard_map.num_shards} control shards"
            )
        self.allocator = StripeAllocator(
            policy=self.config.allocation_policy, seed=self.config.seed
        )
        self.repair = RepairPlanner(self)
        self.regions: dict[str, RegionDesc] = {}
        # `is not None`, not truthiness: an *empty* MetaLog is falsy
        # (len == 0) yet is exactly the durable log a first boot must
        # adopt so later restarts replay it
        self.metalog = metalog if metalog is not None else MetaLog(
            sim,
            append_latency_s=self.config.metalog_append_s,
            checkpoint_every=self.config.metalog_checkpoint_every,
        )
        #: the cluster epoch: bumped on every master recovery and every
        #: server death; descriptors and server slots carry it, stale
        #: holders are fenced
        self.epoch = 0
        self._next_region_id = 1
        self._server_rpc: dict[int, RpcClient] = {}
        self._barriers: dict[str, dict] = {}
        self._notes: dict[str, object] = {}
        self._note_waiters: dict[str, list] = {}
        self._rpc: Optional[RpcServer] = None
        self.alive = True
        #: True between restart and the end of the re-registration grace
        #: period; mutating RPCs park until recovery finishes
        self.recovering = False
        self.recovered_at: Optional[float] = None
        self._recovery_waiters: list = []
        self._awaiting_rejoin: set[int] = set()
        self.obs = obs_for(sim)
        #: logical bytes (size × target replication) each tenant has
        #: committed on this shard — the quota ledger
        self.tenant_bytes: dict[str, int] = {}

    def start(self):
        """Boot the master (generator); replays the metalog if any."""
        cfg = self.config
        state = self.metalog.replay()
        recovering = bool(state.regions or state.servers or state.epoch)
        if recovering:
            yield from self._begin_recovery(state)
        self._rpc = RpcServer(
            self.sim, self.nic, self.cm,
            shard_service(cfg.master_service, self.shard_id), cfg.msg_size
        )
        for method in (
            "register_server",
            "heartbeat",
            "alloc",
            "resize",
            "free",
            "lookup",
            "list_regions",
            "cluster_stats",
            "repair_status",
            "barrier",
            "allreduce",
            "notify",
            "wait_note",
        ):
            self._rpc.register(
                method, self._counted(method, getattr(self, f"_{method}"))
            )
        yield from self._rpc.start()
        self.sim.process(self._lease_checker(), name="master-lease-checker")
        self.repair.start()
        if recovering:
            self.sim.process(self._finish_recovery(), name="master-recovery")
        return self

    def crash(self) -> None:
        """Fail-stop: the master process vanishes mid-flight.

        In-memory state (namespace, membership, waiters) is lost; only
        the metalog survives.  Every RPC connection is torn down so
        peers observe channel death instead of hanging, and any handler
        still running refuses to commit (see :meth:`_log`).
        """
        self.alive = False
        if self._rpc is not None:
            self._rpc.stop("master crashed")
        for client in self._server_rpc.values():
            client.abort("master crashed")
        self._server_rpc.clear()

    def _counted(self, method: str, handler):
        """Wrap an RPC handler so every dispatch bumps its counter.

        The census relies on these: after warm-up, every data-path op
        must leave ``master.rpc_served`` untouched.
        """
        counter = self.obs.metrics.counter("master.rpc_served",
                                           method=method,
                                           shard=self.shard_id)

        def wrapped(*args, **kwargs):
            counter.inc()
            return (yield from handler(*args, **kwargs))

        return wrapped

    # -- the write-ahead metadata log -----------------------------------------

    def _log(self, kind: str, payload):
        """Durably append one record (generator) — the commit point.

        A crashed master must not commit: a handler generator that was
        already in flight when :meth:`crash` ran dies here instead of
        writing a post-crash record to the durable log.
        """
        if not self.alive:
            raise MasterUnavailableError("master crashed")
        # checkpoint BEFORE appending: callers mutate in-memory state
        # after their append returns (alloc inserts the region only once
        # the record is durable), so a snapshot taken now covers every
        # record already in the tail — taken after, it would miss the
        # in-flight record yet truncate it with the tail
        if not self.recovering:
            yield from self.metalog.maybe_checkpoint(self._snapshot_state())
        yield from self.metalog.append(kind, payload)

    def _snapshot_state(self) -> RecoveredState:
        return RecoveredState(
            regions=dict(self.regions),
            servers={
                s.host_id: (s.capacity, s.rkey, s.epoch, s.alive)
                for s in self.allocator.servers
            },
            epoch=self.epoch,
            next_region_id=self._next_region_id,
            notes=dict(self._notes),
        )

    # -- recovery -------------------------------------------------------------

    def _begin_recovery(self, state: RecoveredState):
        """Adopt replayed state and open the re-registration window."""
        self.recovering = True
        self.regions = state.regions
        self._next_region_id = state.next_region_id
        self._notes = dict(state.notes)
        self._recount_tenants()
        self.epoch = state.epoch + 1
        # servers that were alive at the crash are presumed alive — their
        # arenas are intact — but must re-register within the grace
        # period; the inflated lease below is that grace, so the lease
        # checker cannot race the recovery window
        lease = self.sim.now + self.config.recovery_grace_s
        for host_id in sorted(state.servers):
            capacity, rkey, epoch, alive = state.servers[host_id]
            if not alive:
                continue
            self.allocator.add_server(ServerSlot(
                host_id=host_id,
                capacity=capacity,
                free=capacity - self._bytes_on_host(host_id),
                rkey=rkey,
                alive=True,
                last_heartbeat=lease,
                epoch=epoch,
            ))
            self._awaiting_rejoin.add(host_id)
        yield from self._log("epoch", self.epoch)

    def _finish_recovery(self):
        """After the grace period: bury the stragglers, resume repair."""
        yield self.sim.timeout(self.config.recovery_grace_s)
        if not self.alive:
            # crashed again mid-recovery: this instance's grace period
            # is void, the next restart replays and re-opens its own
            return
        for host_id in sorted(self._awaiting_rejoin):
            slot = self.allocator.get_server(host_id)
            if slot is not None and slot.alive:
                yield from self._declare_dead(
                    slot, why="no re-registration after master recovery"
                )
        self._awaiting_rejoin.clear()
        # resume in-flight repair: anything under-replicated goes back on
        # the queue, whether it was degraded before the crash or during it
        for name in sorted(self.regions):
            region = self.regions[name]
            if region.available and any(
                s.replication < region.target_replication
                for s in region.stripes
            ):
                self.repair.enqueue_degraded(region)
        self.recovering = False
        self.recovered_at = self.sim.now
        self.repair._note(f"master recovered at epoch {self.epoch}")
        waiters, self._recovery_waiters = self._recovery_waiters, []
        for waiter in waiters:
            waiter.succeed(True)

    def _ready(self):
        """Park mutating RPCs until recovery finishes (generator)."""
        if self.recovering:
            event = self.sim.event()
            self._recovery_waiters.append(event)
            yield event

    def _fence(self, epoch) -> None:
        """Reject a control RPC carrying a stale epoch (``None`` skips)."""
        if epoch is not None and epoch < self.epoch:
            raise StaleEpochError(
                f"request epoch {epoch} is behind cluster epoch {self.epoch}"
            )

    def _bytes_on_host(self, host_id: int) -> int:
        return sum(
            stripe.length
            for region in self.regions.values()
            for stripe in region.stripes
            for replica in stripe.replicas
            if replica.host_id == host_id
        )

    # -- sharding & tenancy ---------------------------------------------------

    def _owned(self, name: str) -> None:
        """Refuse a region RPC the shard map routes elsewhere.

        The router never misroutes — this guards against stale clients
        computed against a different shard count, which must fail loudly
        rather than split one name's metadata across two WALs.
        """
        if self.shard_map.num_shards == 1:
            return
        owner = self.shard_map.shard_of(name)
        if owner != self.shard_id:
            raise RStoreError(
                f"region {name!r} belongs to shard {owner}, not shard "
                f"{self.shard_id} — the caller's shard map is wrong"
            )

    def _quota_for(self, tenant: str) -> Optional[int]:
        """This shard's share of *tenant*'s quota (None = unlimited)."""
        quotas = self.config.tenant_quota_bytes
        if quotas is None or tenant not in quotas:
            return None
        return split_quota(quotas[tenant], self.shard_map.num_shards,
                           self.shard_id)

    def _check_quota(self, tenant: str, want: int) -> None:
        """Admission control: *want* more logical bytes for *tenant*."""
        quota = self._quota_for(tenant)
        if quota is None:
            return
        used = self.tenant_bytes.get(tenant, 0)
        if used + want > quota:
            self.obs.metrics.counter("master.quota_denied", tenant=tenant,
                                     shard=self.shard_id).inc()
            raise TenantQuotaExceededError(
                f"tenant {tenant!r} would hold {used + want} bytes on "
                f"shard {self.shard_id}, over its {quota}-byte share"
            )

    def _charge_tenant(self, tenant: str, delta: int) -> None:
        """Move *tenant*'s ledger by *delta* logical bytes."""
        used = self.tenant_bytes.get(tenant, 0) + delta
        self.tenant_bytes[tenant] = max(0, used)
        self.obs.metrics.gauge("master.tenant_bytes", tenant=tenant,
                               shard=self.shard_id).set(
            self.tenant_bytes[tenant]
        )

    def _recount_tenants(self) -> None:
        """Rebuild the quota ledger from the (replayed) namespace."""
        self.tenant_bytes = {}
        for name, region in self.regions.items():
            tenant = tenant_of(name)
            self.tenant_bytes[tenant] = (
                self.tenant_bytes.get(tenant, 0)
                + region.size * region.target_replication
            )
        for tenant, used in self.tenant_bytes.items():
            self.obs.metrics.gauge("master.tenant_bytes", tenant=tenant,
                                   shard=self.shard_id).set(used)

    # -- membership -----------------------------------------------------------

    def _register_server(self, host_id, capacity, rkey, fresh=True):
        yield self.sim.timeout(0)
        existing = self.allocator.get_server(host_id)
        if not fresh and (existing is None or not existing.alive):
            # The server only noticed the master's outage — but its own
            # lease expired too (this master, or the one whose log we
            # replayed, buried it).  Its replicas are gone from every
            # descriptor, so a keep-my-arena rejoin would resurrect a
            # zombie: old-epoch descriptors could then write straight
            # into bytes repair is recycling.  Override to fresh; the
            # reply tells the server to wipe its slate.
            fresh = True
        if fresh:
            # A rebooted (or falsely declared dead) server registers with
            # a clean slate: its replicas were already dropped from every
            # descriptor, so it donates its full capacity again.  It is
            # fenced at the current epoch — one-sided ops stamped with an
            # older descriptor epoch must NAK rather than touch the
            # recycled arena.
            slot = ServerSlot(
                host_id=host_id,
                capacity=capacity,
                free=capacity,
                rkey=rkey,
                alive=True,
                last_heartbeat=self.sim.now,
                epoch=self.epoch,
            )
            live: list = []
            if existing is not None:
                self.repair._note(f"server {host_id} rejoined the cluster")
        else:
            # The *master* restarted; the server's arena is intact.  Its
            # usage is recomputed from the replayed descriptors, and the
            # reply lists every address the metadata still references so
            # the server can drop orphaned reservations (allocations the
            # crash aborted before their commit point).
            prev_epoch = existing.epoch if existing is not None else self.epoch
            slot = ServerSlot(
                host_id=host_id,
                capacity=capacity,
                free=capacity - self._bytes_on_host(host_id),
                rkey=rkey,
                alive=True,
                last_heartbeat=self.sim.now,
                epoch=prev_epoch,
            )
            live = sorted(
                (replica.addr, stripe.length)
                for region in self.regions.values()
                for stripe in region.stripes
                for replica in stripe.replicas
                if replica.host_id == host_id
            )
            self.repair._note(
                f"server {host_id} re-registered after master recovery"
            )
        self.allocator.add_server(slot)
        self._awaiting_rejoin.discard(host_id)
        yield from self._log(
            "server", (host_id, capacity, rkey, slot.epoch, True)
        )
        return {"epoch": slot.epoch, "live": live, "fresh": fresh}

    def _heartbeat(self, host_id):
        yield self.sim.timeout(0)
        slot = self.allocator.get_server(host_id)
        if slot is None or not slot.alive:
            # The master no longer counts this server as a member — it
            # rebooted, or a heartbeat gap made the lease checker declare
            # it dead.  Its replicas are already gone from every
            # descriptor, so recovery is simply: register again.
            return {"needs_register": True, "epoch": self.epoch}
        slot.last_heartbeat = self.sim.now
        return {"needs_register": False, "epoch": self.epoch}

    def _lease_checker(self):
        cfg = self.config
        while self.alive:
            yield self.sim.timeout(cfg.heartbeat_interval_s)
            if not self.alive:
                return
            deadline = self.sim.now - cfg.lease_timeout_s
            for slot in self.allocator.servers:
                if slot.alive and slot.last_heartbeat < deadline:
                    yield from self._declare_dead(slot)

    def _declare_dead(self, slot: ServerSlot, why: str = "lease expired"):
        """Expel a server and fence its era (generator: logs + epoch bump)."""
        slot.alive = False
        # Its reservations died with its arena: hand the capacity back so
        # the accounting is truthful if the host ever re-registers, and so
        # cluster totals never carry ghost usage.  (Placement and repair
        # only ever consider *alive* slots, so quarantine is implicit.)
        slot.free = slot.capacity
        self._server_rpc.pop(slot.host_id, None)
        dead = slot.host_id
        self.epoch += 1
        yield from self._log("epoch", self.epoch)
        yield from self._log(
            "server", (dead, slot.capacity, slot.rkey, slot.epoch, False)
        )
        self.repair._note(f"server {dead} declared dead ({why})")
        for region in self.regions.values():
            if not region.available:
                continue
            affected = [
                s for s in region.stripes
                if any(r.host_id == dead for r in s.replicas)
            ]
            if not affected:
                continue
            if all(s.replication > 1 for s in affected):
                # Promote surviving replicas: the region stays available
                # under a new descriptor version; clients learn on their
                # next lookup/remap.  The repair planner then restores
                # the lost copies in the background.
                region.stripes = [
                    s.without_host(dead)
                    if any(r.host_id == dead for r in s.replicas)
                    else s
                    for s in region.stripes
                ]
                region.version += 1
                region.epoch = self.epoch
                yield from self._log("region", region)
                self.repair.enqueue_degraded(region)
            else:
                region.available = False
                region.unavailable_reason = (
                    f"memory server {dead} failed"
                )
                yield from self._log("region", region)

    # -- allocation ---------------------------------------------------------------

    def _server_client(self, host_id: int):
        """Lazily connect to a memory server's control service (generator)."""
        client = self._server_rpc.get(host_id)
        if client is None:
            client = RpcClient(self.sim, self.nic, self.cm)
            yield from client.connect(host_id, self.config.mem_service)
            self._server_rpc[host_id] = client
        return client

    def _alloc(self, name, size, stripe_size=None, preferred_host=None,
               replication=None, epoch=None):
        self._fence(epoch)
        self._owned(name)
        yield from self._ready()
        if name in self.regions:
            raise RegionExistsError(f"region {name!r} already exists")
        stripe_size = stripe_size or self.config.stripe_size
        replication = replication or self.config.default_replication
        tenant = tenant_of(name)
        # admission before placement: a quota denial must not consume
        # placement RNG state or server reservations
        self._check_quota(tenant, size * replication)
        lengths = split_into_stripes(size, stripe_size)
        placement = self.allocator.place(
            lengths, preferred_host=preferred_host, replication=replication
        )

        # One reservation RPC per involved server, batched over every
        # copy that lands there.
        by_host: dict[int, list[int]] = {}
        for copies, length in zip(placement, lengths):
            for host_id in copies:
                by_host.setdefault(host_id, []).append(length)
        reserved: dict[int, tuple[list[int], int]] = {}
        try:
            for host_id, host_lengths in by_host.items():
                client = yield from self._server_client(host_id)
                addrs, rkey = yield from client.call(
                    "reserve_batch", host_lengths, self.shard_id
                )
                reserved[host_id] = (addrs, rkey)
        except Exception as exc:
            # Roll back partial reservations and tracked capacity.
            for host_id, (addrs, _rkey) in reserved.items():
                client = yield from self._server_client(host_id)
                yield from client.call("release_batch", addrs, self.shard_id)
            for copies, length in zip(placement, lengths):
                for host_id in copies:
                    self.allocator.release(host_id, length)
            raise AllocationError(f"allocation of {name!r} failed: {exc}") from exc

        cursors = {h: 0 for h in by_host}
        stripes = []
        for index, (copies, length) in enumerate(zip(placement, lengths)):
            replicas = []
            for host_id in copies:
                addrs, rkey = reserved[host_id]
                replicas.append(
                    StripeReplica(
                        host_id=host_id,
                        addr=addrs[cursors[host_id]],
                        rkey=rkey,
                    )
                )
                cursors[host_id] += 1
            stripes.append(
                StripeDesc(index=index, length=length,
                           replicas=tuple(replicas))
            )
        region = RegionDesc(
            region_id=self._next_region_id,
            name=name,
            size=size,
            stripe_size=stripe_size,
            stripes=stripes,
            target_replication=replication,
            epoch=self.epoch,
        )
        self._next_region_id += 1
        region.validate()
        # commit point: if the master dies before this append, the
        # reservations above are orphans the next re-registration drops
        yield from self._log("region", region)
        self.regions[name] = region
        self._charge_tenant(tenant, size * replication)
        return region

    def _resize(self, name, new_size, epoch=None):
        """Grow a region by appending stripes (shrinking not supported).

        Existing stripes — and therefore existing data and mappings —
        are untouched; the descriptor version bumps so clients know to
        re-map before touching the new range.
        """
        self._fence(epoch)
        self._owned(name)
        yield from self._ready()
        region = self.regions.get(name)
        if region is None:
            raise RegionNotFoundError(f"no region named {name!r}")
        if not region.available:
            raise RStoreError(
                f"cannot resize unavailable region {name!r}: "
                f"{region.unavailable_reason}"
            )
        if new_size < region.size:
            raise RStoreError(
                f"shrinking is not supported ({region.size} -> {new_size})"
            )
        if new_size == region.size:
            yield self.sim.timeout(0)
            return region
        if region.size % region.stripe_size != 0:
            # a partial tail stripe cannot be extended in place (stripes
            # are immutable server reservations) and address translation
            # requires every non-final stripe to be full
            raise RStoreError(
                f"cannot grow {name!r}: its size {region.size} is not a "
                f"multiple of the stripe size {region.stripe_size}"
            )
        old_stripes = list(region.stripes)
        grown = new_size - region.size
        replication = region.target_replication
        tenant = tenant_of(name)
        self._check_quota(tenant, grown * replication)
        lengths = split_into_stripes(grown, region.stripe_size)
        placement = self.allocator.place(lengths, replication=replication)
        by_host: dict[int, list[int]] = {}
        for copies, length in zip(placement, lengths):
            for host_id in copies:
                by_host.setdefault(host_id, []).append(length)
        reserved: dict[int, tuple[list[int], int]] = {}
        try:
            for host_id, host_lengths in by_host.items():
                client = yield from self._server_client(host_id)
                addrs, rkey = yield from client.call(
                    "reserve_batch", host_lengths, self.shard_id
                )
                reserved[host_id] = (addrs, rkey)
        except Exception as exc:
            for host_id, (addrs, _rkey) in reserved.items():
                client = yield from self._server_client(host_id)
                yield from client.call("release_batch", addrs, self.shard_id)
            for copies, length in zip(placement, lengths):
                for host_id in copies:
                    self.allocator.release(host_id, length)
            raise AllocationError(f"resize of {name!r} failed: {exc}") from exc
        cursors = {h: 0 for h in by_host}
        new_stripes = []
        base_index = len(old_stripes)
        for offset, (copies, length) in enumerate(zip(placement, lengths)):
            replicas = []
            for host_id in copies:
                addrs, rkey = reserved[host_id]
                replicas.append(
                    StripeReplica(host_id=host_id,
                                  addr=addrs[cursors[host_id]], rkey=rkey)
                )
                cursors[host_id] += 1
            new_stripes.append(
                StripeDesc(index=base_index + offset, length=length,
                           replicas=tuple(replicas))
            )
        region.stripes = old_stripes + new_stripes
        region.size = new_size
        region.version += 1
        region.epoch = self.epoch
        yield from self._log("region", region)
        self._charge_tenant(tenant, grown * replication)
        return region

    def _free(self, name, epoch=None):
        self._fence(epoch)
        self._owned(name)
        yield from self._ready()
        region = self.regions.pop(name, None)
        if region is None:
            raise RegionNotFoundError(f"no region named {name!r}")
        self._charge_tenant(
            tenant_of(name), -region.size * region.target_replication
        )
        # log the intent first: a crash mid-release leaks server-side
        # reservations (reconciled at re-registration) instead of
        # resurrecting a region whose arena bytes were already recycled
        yield from self._log("free", name)
        by_host: dict[int, list[int]] = {}
        for stripe in region.stripes:
            for replica in stripe.replicas:
                by_host.setdefault(replica.host_id, []).append(replica.addr)
        for host_id, addrs in by_host.items():
            if not self.allocator.server(host_id).alive:
                continue  # its arena died with it
            client = yield from self._server_client(host_id)
            yield from client.call("release_batch", addrs, self.shard_id)
        for stripe in region.stripes:
            for replica in stripe.replicas:
                self.allocator.release(replica.host_id, stripe.length)
        rsan = rsan_for(self.sim)
        if rsan.enabled:
            # the bytes are back in the arena allocator: drop every
            # shadow interval so accesses to a recycled range are never
            # matched against the dead region's history
            rsan.clear_region(region)
        return True

    def _lookup(self, name):
        yield self.sim.timeout(0)
        self._owned(name)
        region = self.regions.get(name)
        if region is None:
            raise RegionNotFoundError(f"no region named {name!r}")
        return region

    def _list_regions(self):
        yield self.sim.timeout(0)
        return sorted(self.regions)

    def _cluster_stats(self):
        yield self.sim.timeout(0)
        return {
            "servers": len(self.allocator.servers),
            "alive_servers": len(self.allocator.alive_servers),
            "total_free": self.allocator.total_free,
            "regions": len(self.regions),
            "epoch": self.epoch,
            "recovering": self.recovering,
            "shard": self.shard_id,
            "tenant_bytes": dict(self.tenant_bytes),
        }

    def _repair_status(self):
        """Snapshot of the background repair planner (control RPC)."""
        yield self.sim.timeout(0)
        return self.repair.status()

    # -- synchronization ------------------------------------------------------------

    def _barrier(self, name, count):
        """Block until *count* participants have arrived at *name*."""
        entry = self._barriers.get(name)
        if entry is None:
            entry = {"arrived": 0, "count": count, "waiters": [],
                     "generation": 0}
            self._barriers[name] = entry
        if entry["count"] != count:
            raise RStoreError(
                f"barrier {name!r} size mismatch: {entry['count']} != {count}"
            )
        entry["arrived"] += 1
        generation = entry["generation"]
        if entry["arrived"] >= count:
            waiters = entry["waiters"]
            entry["arrived"] = 0
            entry["waiters"] = []
            entry["generation"] += 1
            for waiter in waiters:
                waiter.succeed(generation)
            yield self.sim.timeout(0)
            return generation
        event = self.sim.event()
        entry["waiters"].append(event)
        result = yield event
        return result

    def _allreduce(self, name, count, value):
        """Sum *value* across *count* participants; all get the total."""
        entry = self._barriers.get(("allreduce", name))
        if entry is None:
            entry = {"values": [], "count": count, "waiters": []}
            self._barriers[("allreduce", name)] = entry
        if entry["count"] != count:
            raise RStoreError(
                f"allreduce {name!r} size mismatch: {entry['count']} != {count}"
            )
        entry["values"].append(value)
        if len(entry["values"]) >= count:
            total = sum(entry["values"])
            waiters = entry["waiters"]
            del self._barriers[("allreduce", name)]
            for waiter in waiters:
                waiter.succeed(total)
            yield self.sim.timeout(0)
            return total
        event = self.sim.event()
        entry["waiters"].append(event)
        total = yield event
        return total

    def _notify(self, name, payload=None):
        # a note is control-plane metadata like any region descriptor:
        # rendezvous state (kv.<name>.meta) must survive a master crash
        # or every post-restart open waits on it forever
        yield from self._ready()
        yield from self._log("note", (name, payload))
        self._notes[name] = payload
        for waiter in self._note_waiters.pop(name, []):
            waiter.succeed(payload)
        return True

    def _wait_note(self, name):
        if name in self._notes:
            yield self.sim.timeout(0)
            return self._notes[name]
        event = self.sim.event()
        self._note_waiters.setdefault(name, []).append(event)
        payload = yield event
        return payload
