"""Server-side arena allocator.

A memory server registers its whole DRAM donation as one MR at startup
(the separation philosophy: pay registration once, never per
allocation).  Stripe reservations are then carved out of the arena by
this first-fit free-list allocator with coalescing on release.
"""

from __future__ import annotations

from repro.core.errors import OutOfMemoryError, RStoreError

__all__ = ["Arena"]


class Arena:
    """First-fit allocator over ``[base, base+capacity)``.

    Reservation lengths are rounded up to ``alignment`` so every
    reservation starts aligned (RDMA atomics need 8-byte alignment;
    the default of 64 also keeps stripes cacheline-aligned).  ``base``
    itself must be aligned — MR addresses are page-aligned, so it is.
    """

    def __init__(self, base: int, capacity: int, alignment: int = 64):
        if capacity <= 0:
            raise ValueError(f"capacity must be positive, got {capacity}")
        if alignment < 1 or base % alignment:
            raise ValueError(f"base {base:#x} not {alignment}-byte aligned")
        self.base = base
        self.capacity = capacity
        self.alignment = alignment
        #: sorted list of (offset, length) free extents
        self._free: list[tuple[int, int]] = [(0, capacity)]
        self._live: dict[int, int] = {}  # offset -> length

    @property
    def free_bytes(self) -> int:
        return sum(length for _off, length in self._free)

    @property
    def used_bytes(self) -> int:
        return self.capacity - self.free_bytes

    @property
    def live_allocations(self) -> int:
        return len(self._live)

    def reserve(self, length: int) -> int:
        """Carve out *length* bytes; returns the absolute address."""
        if length <= 0:
            raise ValueError(f"reservation must be positive, got {length}")
        length = -(-length // self.alignment) * self.alignment
        for i, (off, extent) in enumerate(self._free):
            if extent >= length:
                if extent == length:
                    del self._free[i]
                else:
                    self._free[i] = (off + length, extent - length)
                self._live[off] = length
                return self.base + off
        raise OutOfMemoryError(
            f"arena has {self.free_bytes} free bytes but none of its "
            f"{len(self._free)} extents fits {length}"
        )

    def retain(self, live_addrs) -> list[int]:
        """Release every reservation whose address is not in *live_addrs*.

        Reconciliation after a master restart: reservations whose
        "region" record never reached the metadata log are orphans —
        the master aborted the allocation, but this server still holds
        the bytes.  Returns the dropped addresses (sorted), mostly for
        tests and log lines.
        """
        live = set(live_addrs)
        dropped = sorted(
            self.base + off for off in self._live if self.base + off not in live
        )
        for addr in dropped:
            self.release(addr)
        return dropped

    def release(self, addr: int) -> int:
        """Free a reservation by address; returns its length."""
        off = addr - self.base
        length = self._live.pop(off, None)
        if length is None:
            raise RStoreError(f"release of unknown reservation at {addr:#x}")
        self._insert_free(off, length)
        return length

    def _insert_free(self, off: int, length: int) -> None:
        # Insert keeping order, then coalesce with neighbours.
        lo, hi = 0, len(self._free)
        while lo < hi:
            mid = (lo + hi) // 2
            if self._free[mid][0] < off:
                lo = mid + 1
            else:
                hi = mid
        self._free.insert(lo, (off, length))
        # merge with successor first, then predecessor
        if lo + 1 < len(self._free):
            noff, nlen = self._free[lo + 1]
            if off + length == noff:
                self._free[lo] = (off, length + nlen)
                del self._free[lo + 1]
        if lo > 0:
            poff, plen = self._free[lo - 1]
            coff, clen = self._free[lo]
            if poff + plen == coff:
                self._free[lo - 1] = (poff, plen + clen)
                del self._free[lo]
