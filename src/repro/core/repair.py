"""Background stripe repair: restoring replication after server death.

When the master's lease checker declares a memory server dead it
immediately *promotes* surviving replicas so affected regions stay
available — but the promoted stripes are left degraded (fewer copies
than the region asked for).  The planner here closes that gap entirely
on the control path:

1. degraded stripes are queued as :class:`RepairTask`\\ s;
2. a pool of ``repair_parallelism`` workers picks a replacement server
   (live, not already holding a copy, deterministic most-free choice),
   reserves a slot there, and drives a server→server ``copy_stripe``
   RPC — the *destination* pulls the stripe out of a surviving replica's
   arena with one-sided READs, so the source CPU never runs;
3. the new replica is swapped into the :class:`RegionDesc` atomically
   (one instant of simulated time) and the descriptor ``version`` bumps,
   so clients pick the new layout up on their next lookup or retry.

Clients never participate and the data path stays one-sided throughout.
Writes racing with the copy can land on the survivors after the copy
read them; reads are anchored to the surviving primary, so applications
always see their own writes.  The repaired copy converges for writers
that have remapped (they fan out to it directly); see "Fault model &
recovery" in DESIGN.md for the exact guarantee.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Optional

from repro.core.errors import FatalError, MasterUnavailableError
from repro.core.region import StripeReplica
from repro.core.shard import tenant_of

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.core.master import Master

__all__ = ["RepairTask", "RepairPlanner"]


@dataclass
class RepairTask:
    """One degraded stripe awaiting re-replication."""

    region_name: str
    stripe_index: int
    attempts: int = 0

    def __str__(self) -> str:
        return f"stripe {self.stripe_index} of {self.region_name!r}"


@dataclass
class _RepairStats:
    repaired: int = 0
    abandoned: int = 0
    copies_driven: int = 0
    bytes_copied: int = 0
    log: list[tuple[float, str]] = field(default_factory=list)


class RepairPlanner:
    """The master's background re-replication engine."""

    def __init__(self, master: "Master"):
        self.master = master
        self.sim = master.sim
        self._queue: deque[RepairTask] = deque()
        self._waiters: list = []
        self._stats = _RepairStats()

    # -- public surface ------------------------------------------------------

    @property
    def log(self) -> list[tuple[float, str]]:
        """Timeline of repair events as ``(sim_time, message)`` pairs."""
        return self._stats.log

    @property
    def repaired(self) -> int:
        return self._stats.repaired

    @property
    def abandoned(self) -> int:
        return self._stats.abandoned

    @property
    def pending(self) -> int:
        return len(self._queue)

    def status(self) -> dict:
        return {
            "pending": len(self._queue),
            "repaired": self._stats.repaired,
            "abandoned": self._stats.abandoned,
            "copies_driven": self._stats.copies_driven,
            "bytes_copied": self._stats.bytes_copied,
            "log": list(self._stats.log),
        }

    def start(self) -> None:
        """Spawn the worker pool (called from ``Master.start``)."""
        for idx in range(self.master.config.repair_parallelism):
            self.sim.process(self._worker(), name=f"repair-worker-{idx}")

    def enqueue_degraded(self, region) -> None:
        """Queue every stripe of *region* that is below its target."""
        if not region.available:
            return
        queued = {
            (t.region_name, t.stripe_index) for t in self._queue
        }
        for stripe in region.stripes:
            if stripe.replication >= region.target_replication:
                continue
            key = (region.name, stripe.index)
            if key in queued:
                continue
            self._queue.append(RepairTask(region.name, stripe.index))
            self._note(
                f"queued repair of stripe {stripe.index} of "
                f"{region.name!r} ({stripe.replication}/"
                f"{region.target_replication} copies)"
            )
        self._kick()

    # -- internals -----------------------------------------------------------

    def _note(self, message: str) -> None:
        self._stats.log.append((self.sim.now, message))

    def _kick(self) -> None:
        waiters, self._waiters = self._waiters, []
        for event in waiters:
            event.succeed()

    def _worker(self):
        while self.master.alive:
            if not self._queue:
                event = self.sim.event()
                self._waiters.append(event)
                yield event
                continue
            task = self._queue.popleft()
            try:
                yield from self._repair_stripe(task)
            except MasterUnavailableError:
                return  # this master crashed; its workers die with it
            except FatalError as exc:
                # protocol misuse or unrecoverable state — a retry
                # would hit the exact same wall, so don't spend them
                self._stats.abandoned += 1
                self._note(f"abandoned {task}: fatal: {exc}")
            except Exception as exc:  # noqa: BLE001 - workers must survive
                self._retry_or_abandon(task, str(exc))

    def _retry_or_abandon(self, task: RepairTask, reason: str) -> None:
        task.attempts += 1
        if task.attempts >= self.master.config.repair_attempt_limit:
            self._stats.abandoned += 1
            self._note(f"abandoned {task}: {reason}")
        else:
            self._note(f"retrying {task} (attempt {task.attempts}): {reason}")
            self._queue.append(task)
            self._kick()

    def _current_stripe(self, task: RepairTask):
        """The live (region, stripe) pair for *task*, or ``(None, None)``
        when the repair is moot (region freed, lost, or already whole)."""
        region = self.master.regions.get(task.region_name)
        if region is None or not region.available:
            return None, None
        if task.stripe_index >= len(region.stripes):
            return None, None
        stripe = region.stripes[task.stripe_index]
        if stripe.replication >= region.target_replication:
            return None, None
        return region, stripe

    def _pick_source(self, stripe) -> Optional[StripeReplica]:
        allocator = self.master.allocator
        for replica in stripe.replicas:
            if allocator.host_alive(replica.host_id):
                return replica
        return None

    def _repair_stripe(self, task: RepairTask):
        region, stripe = self._current_stripe(task)
        if region is None:
            return
        allocator = self.master.allocator
        source = self._pick_source(stripe)
        if source is None:
            # every copy is gone; the lease checker will (or already did)
            # mark the region unavailable — nothing left to copy from
            self._stats.abandoned += 1
            self._note(f"abandoned {task}: no live source replica")
            return
        exclude = [r.host_id for r in stripe.replicas]
        slot = allocator.place_replacement(stripe.length, exclude)
        if slot is None:
            self._retry_or_abandon(task, "no live server with capacity")
            return

        target = slot.host_id
        addr = None
        try:
            client = yield from self.master._server_client(target)
            addrs, rkey = yield from client.call(
                "reserve_batch", [stripe.length], self.master.shard_id
            )
            addr = addrs[0]
            # Destination pulls the stripe out of the surviving replica's
            # arena.  Generous timeout so a target dying mid-copy cannot
            # wedge the worker forever.
            timeout_s = 1.0 + stripe.length / (64 << 20)
            yield from client.call(
                "copy_stripe",
                source.host_id,
                source.addr,
                source.rkey,
                addr,
                stripe.length,
                timeout=timeout_s,
            )
        except Exception as exc:
            allocator.release(target, stripe.length)
            if addr is not None and allocator.host_alive(target):
                try:
                    yield from client.call(
                        "release_batch", [addr], self.master.shard_id
                    )
                except Exception:  # noqa: BLE001 - target just died
                    pass
            self._retry_or_abandon(task, f"copy via server {target}: {exc}")
            return

        self._stats.copies_driven += 1
        self._stats.bytes_copied += stripe.length
        # repair bandwidth is accounted to the tenant whose region is
        # being healed — the isolation story needs the split, not just
        # the cluster total
        self.master.obs.metrics.counter(
            "master.repair_bytes",
            tenant=tenant_of(task.region_name),
            shard=self.master.shard_id,
        ).inc(stripe.length)

        # Re-validate before publishing: the cluster may have changed
        # under the copy (region freed, another failure, target died).
        region, stripe = self._current_stripe(task)
        if (
            region is None
            or not allocator.host_alive(target)
            or self._pick_source(stripe) is None
            or any(r.host_id == target for r in stripe.replicas)
        ):
            allocator.release(target, stripe.length)
            if allocator.host_alive(target):
                try:
                    yield from client.call(
                        "release_batch", [addr], self.master.shard_id
                    )
                except Exception:  # noqa: BLE001 - best effort
                    pass
            self._retry_or_abandon(task, "cluster changed during the copy")
            return

        # Atomic swap: one assignment at one simulated instant.  The
        # descriptor moves to the current epoch so ops against the new
        # replica clear the fence of a freshly re-donated server.
        replica = StripeReplica(host_id=target, addr=addr, rkey=rkey)
        region.stripes[task.stripe_index] = stripe.with_replica(replica)
        region.version += 1
        region.epoch = self.master.epoch
        # Commit the swap to the metalog: a restarted master must not
        # forget a replica clients may already have seen via lookup.
        # (A crash inside the append window forgets it — harmless, the
        # surviving replicas still hold the data and the orphaned
        # reservation is reclaimed at re-registration.)
        yield from self.master._log("region", region)
        self._stats.repaired += 1
        self._note(
            f"re-replicated stripe {stripe.index} of {region.name!r} "
            f"onto server {target} ({stripe.replication + 1}/"
            f"{region.target_replication} copies, v{region.version})"
        )
        if stripe.replication + 1 < region.target_replication:
            # lost more than one copy; keep going until whole again
            self._queue.append(RepairTask(task.region_name, task.stripe_index))
            self._kick()
