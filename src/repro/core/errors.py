"""RStore exception hierarchy.

Two families below :class:`RStoreError` classify every failure by what
a retry loop is allowed to do with it:

* :class:`RecoverableError` — transient; the condition can clear on its
  own (a server died and repair is running, the master is restarting, a
  cached descriptor went stale).  Retry loops may catch these, refresh
  whatever state went stale, and try again — within their deadline or
  retry budget.
* :class:`FatalError` — deterministic; retrying the identical request
  can never succeed (the region does not exist, the access is out of
  bounds, the deadline already expired).  Retry loops must let these
  propagate immediately.

Every public error must appear in ``__all__``: the RPC layer rebuilds
remote exceptions by name from this list, so an unlisted class would
degrade to an opaque ``RpcRemoteError`` at the caller.
"""

from __future__ import annotations

__all__ = [
    "RStoreError",
    "RecoverableError",
    "FatalError",
    "AllocationError",
    "OutOfMemoryError",
    "TenantQuotaExceededError",
    "RegionNotFoundError",
    "RegionExistsError",
    "RegionUnavailableError",
    "NotMappedError",
    "BoundsError",
    "StaleEpochError",
    "MasterUnavailableError",
    "DeadlineExceededError",
    "RetryBudgetExceededError",
]


class RStoreError(Exception):
    """Base class for all RStore failures."""


class RecoverableError(RStoreError):
    """Transient failure: retrying (after refreshing state) may succeed."""


class FatalError(RStoreError):
    """Deterministic failure: retrying the same request cannot succeed."""


class AllocationError(RStoreError):
    """A region could not be allocated."""


class OutOfMemoryError(AllocationError):
    """The cluster (or a chosen server) lacks free DRAM."""


class TenantQuotaExceededError(AllocationError):
    """The allocation would push its tenant past its capacity quota.

    Deterministic for the request as issued — the tenant must free
    capacity (or be granted more quota) before retrying, so retry loops
    treat it like a fatal allocation failure.  Other tenants' requests
    are unaffected: quotas isolate, they never cascade.
    """


class RegionNotFoundError(FatalError):
    """No region is registered under the requested name."""


class RegionExistsError(FatalError):
    """A region with that name already exists."""


class RegionUnavailableError(RecoverableError):
    """The region lost one of its memory servers."""


class NotMappedError(FatalError):
    """Data-path access attempted through an unmapped or stale mapping."""


class BoundsError(FatalError):
    """Access outside the region's [0, size) range."""


class StaleEpochError(RecoverableError):
    """The request carried an epoch older than the cluster's.

    Raised by the master for fenced control RPCs and synthesized by the
    client when a one-sided op is NAK'd by a server that re-registered
    at a newer epoch.  Recoverable: refresh cached metadata (which
    carries the new epoch) and re-issue — but never blindly retry the
    stale request.
    """


class MasterUnavailableError(RecoverableError):
    """The master is unreachable (crashed, restarting or partitioned)."""


class DeadlineExceededError(FatalError):
    """The operation's deadline expired before it could complete."""


class RetryBudgetExceededError(DeadlineExceededError):
    """The operation's retry budget drained before it could complete."""
