"""RStore exception hierarchy."""

from __future__ import annotations

__all__ = [
    "RStoreError",
    "AllocationError",
    "OutOfMemoryError",
    "RegionNotFoundError",
    "RegionExistsError",
    "RegionUnavailableError",
    "NotMappedError",
    "BoundsError",
]


class RStoreError(Exception):
    """Base class for all RStore failures."""


class AllocationError(RStoreError):
    """A region could not be allocated."""


class OutOfMemoryError(AllocationError):
    """The cluster (or a chosen server) lacks free DRAM."""


class RegionNotFoundError(RStoreError):
    """No region is registered under the requested name."""


class RegionExistsError(RStoreError):
    """A region with that name already exists."""


class RegionUnavailableError(RStoreError):
    """The region lost one of its memory servers."""


class NotMappedError(RStoreError):
    """Data-path access attempted through an unmapped or stale mapping."""


class BoundsError(RStoreError):
    """Access outside the region's [0, size) range."""
