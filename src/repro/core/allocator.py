"""Master-side stripe placement.

The allocator decides which memory server hosts each stripe of a new
region.  Policies:

``round_robin``
    Walk the server ring, one stripe per server — maximises the number
    of NICs serving a sequential scan (the aggregate-bandwidth story).
``random``
    Uniform random server per stripe (seeded, reproducible).
``spread``
    Always the server with the most free capacity — balances usage
    when regions have skewed sizes.

The allocator tracks free capacity conservatively; the server's arena
allocator is the ground truth at reservation time.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Iterable, Optional

from repro.core.errors import OutOfMemoryError

__all__ = ["ServerSlot", "StripeAllocator"]


@dataclass
class ServerSlot:
    """The master's view of one memory server."""

    host_id: int
    capacity: int
    free: int
    rkey: int = 0
    alive: bool = True
    last_heartbeat: float = 0.0
    #: cluster epoch at the server's last (re-)registration
    epoch: int = 0


class StripeAllocator:
    """Chooses a memory server for every stripe of a region."""

    def __init__(self, policy: str = "round_robin", seed: int = 7):
        self.policy = policy
        self._servers: dict[int, ServerSlot] = {}
        self._ring_pos = 0
        self._rng = random.Random(seed)

    # -- membership -----------------------------------------------------------

    def add_server(self, slot: ServerSlot) -> None:
        self._servers[slot.host_id] = slot

    def remove_server(self, host_id: int) -> None:
        self._servers.pop(host_id, None)

    def server(self, host_id: int) -> ServerSlot:
        return self._servers[host_id]

    def get_server(self, host_id: int) -> Optional[ServerSlot]:
        return self._servers.get(host_id)

    def host_alive(self, host_id: int) -> bool:
        slot = self._servers.get(host_id)
        return slot is not None and slot.alive

    @property
    def servers(self) -> list[ServerSlot]:
        return [self._servers[h] for h in sorted(self._servers)]

    @property
    def alive_servers(self) -> list[ServerSlot]:
        return [s for s in self.servers if s.alive]

    @property
    def total_free(self) -> int:
        return sum(s.free for s in self.alive_servers)

    # -- placement --------------------------------------------------------------

    def place(
        self,
        stripe_lengths: list[int],
        preferred_host: Optional[int] = None,
        replication: int = 1,
    ) -> list[tuple[int, ...]]:
        """Pick ``replication`` distinct hosts per stripe (primary
        first); decrements tracked capacity for every copy.

        ``preferred_host`` is a locality hint: when that server is alive
        and can hold a full copy, every primary lands there (the paper's
        co-located allocations, e.g. a sorter's shuffle target on its
        own machine).  Replicas always avoid their primary's server.

        Raises :class:`OutOfMemoryError` (leaving capacities untouched)
        when the stripes cannot all be placed.
        """
        if replication < 1:
            raise OutOfMemoryError(f"invalid replication factor {replication}")
        alive = self.alive_servers
        if not alive:
            raise OutOfMemoryError("no live memory servers")
        if replication > len(alive):
            raise OutOfMemoryError(
                f"replication {replication} exceeds {len(alive)} live servers"
            )
        if sum(stripe_lengths) * replication > self.total_free:
            raise OutOfMemoryError(
                f"need {sum(stripe_lengths) * replication} bytes, cluster "
                f"has {self.total_free} free"
            )
        chooser = getattr(self, f"_choose_{self.policy}")
        placement: list[tuple[int, ...]] = []
        charged: list[tuple[ServerSlot, int]] = []

        def charge(slot: ServerSlot, length: int) -> None:
            slot.free -= length
            charged.append((slot, length))

        use_preferred = False
        if preferred_host is not None:
            slot = self._servers.get(preferred_host)
            total = sum(stripe_lengths)
            use_preferred = (
                slot is not None and slot.alive and slot.free >= total
            )
        try:
            for length in stripe_lengths:
                copies: list[int] = []
                if use_preferred:
                    slot = self._servers[preferred_host]
                    if slot.free < length:
                        raise OutOfMemoryError(
                            f"preferred server {preferred_host} ran out"
                        )
                    charge(slot, length)
                    copies.append(preferred_host)
                else:
                    slot = chooser(length)
                    if slot is None:
                        raise OutOfMemoryError(
                            f"no server can hold a {length}-byte stripe"
                        )
                    charge(slot, length)
                    copies.append(slot.host_id)
                # replicas: most-free live servers not already holding one
                while len(copies) < replication:
                    candidates = [
                        s for s in self.alive_servers
                        if s.host_id not in copies and s.free >= length
                    ]
                    if not candidates:
                        raise OutOfMemoryError(
                            f"cannot place replica {len(copies)} of a "
                            f"{length}-byte stripe"
                        )
                    best = max(candidates, key=lambda s: (s.free, -s.host_id))
                    charge(best, length)
                    copies.append(best.host_id)
                placement.append(tuple(copies))
        except OutOfMemoryError:
            for slot, length in charged:
                slot.free += length
            raise
        return placement

    def place_replacement(
        self, length: int, exclude_hosts: Iterable[int]
    ) -> Optional[ServerSlot]:
        """Pick a live server for a replacement replica (repair).

        Deterministic most-free choice (lowest host id breaks ties) among
        live servers not already holding a copy; charges the tracked
        capacity and returns the slot, or ``None`` when nothing fits.
        """
        exclude = set(exclude_hosts)
        candidates = [
            s for s in self.alive_servers
            if s.host_id not in exclude and s.free >= length
        ]
        if not candidates:
            return None
        best = max(candidates, key=lambda s: (s.free, -s.host_id))
        best.free -= length
        return best

    def release(self, host_id: int, nbytes: int) -> None:
        """Return capacity after a region is freed."""
        slot = self._servers.get(host_id)
        if slot is not None:
            slot.free = min(slot.capacity, slot.free + nbytes)

    # -- policies ---------------------------------------------------------------

    def _choose_round_robin(self, length: int):
        alive = self.alive_servers
        for attempt in range(len(alive)):
            slot = alive[(self._ring_pos + attempt) % len(alive)]
            if slot.free >= length:
                self._ring_pos = (self._ring_pos + attempt + 1) % len(alive)
                return slot
        return None

    def _choose_random(self, length: int):
        candidates = [s for s in self.alive_servers if s.free >= length]
        if not candidates:
            return None
        return self._rng.choice(candidates)

    def _choose_spread(self, length: int):
        candidates = [s for s in self.alive_servers if s.free >= length]
        if not candidates:
            return None
        return max(candidates, key=lambda s: (s.free, -s.host_id))
