"""Region descriptors and address translation.

A *region* is a named, byte-addressable slab of distributed DRAM.  It
is cut into fixed-size *stripes*, each resident on one memory server.
Address translation (region offset → stripe, stripe offset) is pure
arithmetic on the descriptor — exactly what lets RStore keep metadata
off the data path: once a client holds the descriptor, no lookup ever
happens again.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator

from repro.core.errors import BoundsError

__all__ = ["StripeReplica", "StripeDesc", "RegionDesc", "split_into_stripes"]


@dataclass(frozen=True)
class StripeReplica:
    """One physical copy of a stripe on one memory server."""

    host_id: int
    #: virtual address of the copy inside the server's arena
    addr: int
    #: rkey of the server's pre-registered arena MR
    rkey: int


@dataclass(frozen=True)
class StripeDesc:
    """One stripe: a contiguous chunk, possibly replicated.

    ``replicas[0]`` is the primary — reads go there; writes fan out to
    every replica.  The single-copy accessors (``host_id`` / ``addr`` /
    ``rkey``) refer to the primary, which keeps unreplicated code
    paths oblivious to replication.
    """

    index: int
    length: int
    replicas: tuple[StripeReplica, ...]

    def __post_init__(self):
        if not self.replicas:
            raise ValueError("a stripe needs at least one replica")
        hosts = [r.host_id for r in self.replicas]
        if len(set(hosts)) != len(hosts):
            raise ValueError("stripe replicas must live on distinct servers")

    @property
    def primary(self) -> StripeReplica:
        return self.replicas[0]

    @property
    def host_id(self) -> int:
        return self.primary.host_id

    @property
    def addr(self) -> int:
        return self.primary.addr

    @property
    def rkey(self) -> int:
        return self.primary.rkey

    @property
    def replication(self) -> int:
        return len(self.replicas)

    def without_host(self, host_id: int) -> "StripeDesc":
        """A descriptor with *host_id*'s replica dropped (promotion)."""
        remaining = tuple(r for r in self.replicas if r.host_id != host_id)
        return StripeDesc(index=self.index, length=self.length,
                          replicas=remaining)

    def with_replica(self, replica: StripeReplica) -> "StripeDesc":
        """A descriptor with *replica* appended (repair re-protection).

        The new copy never becomes the primary: reads keep hitting the
        replica that held the data all along.
        """
        return StripeDesc(index=self.index, length=self.length,
                          replicas=self.replicas + (replica,))


@dataclass
class RegionDesc:
    """The full metadata a client needs to access a region."""

    region_id: int
    name: str
    size: int
    stripe_size: int
    stripes: list[StripeDesc] = field(default_factory=list)
    #: cleared when a hosting server dies
    available: bool = True
    unavailable_reason: str = ""

    #: bumped whenever the master rewrites the descriptor (promotion,
    #: repair, resize) — clients compare it to spot stale mappings
    version: int = 1
    #: the replication factor requested at allocation time; the repair
    #: planner drives every stripe back to this many copies
    target_replication: int = 1
    #: cluster epoch the descriptor was last written at — stamped onto
    #: one-sided ops so servers that re-registered at a newer epoch can
    #: fence stale accessors (see DESIGN.md "Crash recovery & fencing")
    epoch: int = 0

    @property
    def hosts(self) -> tuple[int, ...]:
        """Distinct memory servers hosting this region (primaries first,
        then replica-only hosts), in stripe order."""
        seen: dict[int, None] = {}
        for stripe in self.stripes:
            seen.setdefault(stripe.host_id, None)
        for stripe in self.stripes:
            for replica in stripe.replicas[1:]:
                seen.setdefault(replica.host_id, None)
        return tuple(seen)

    @property
    def replication(self) -> int:
        return min(s.replication for s in self.stripes) if self.stripes else 1

    def locate(self, offset: int, length: int) -> Iterator[tuple[StripeDesc, int, int]]:
        """Translate ``[offset, offset+length)`` to stripe-local pieces.

        Yields ``(stripe, offset_within_stripe, piece_length)`` tuples
        covering the range in order.
        """
        if offset < 0 or length < 0 or offset + length > self.size:
            raise BoundsError(
                f"access [{offset}, +{length}) outside region "
                f"{self.name!r} of {self.size} bytes"
            )
        pos = offset
        remaining = length
        while remaining > 0:
            index, stripe_off = divmod(pos, self.stripe_size)
            stripe = self.stripes[index]
            take = min(stripe.length - stripe_off, remaining)
            yield stripe, stripe_off, take
            pos += take
            remaining -= take

    def validate(self) -> None:
        """Check descriptor invariants (used by tests and the master)."""
        assert sum(s.length for s in self.stripes) == self.size
        for i, stripe in enumerate(self.stripes):
            assert stripe.index == i
            if i < len(self.stripes) - 1:
                assert stripe.length == self.stripe_size
            else:
                assert 0 < stripe.length <= self.stripe_size


def split_into_stripes(size: int, stripe_size: int) -> list[int]:
    """Stripe lengths for a region of *size* bytes (last may be short)."""
    if size <= 0:
        raise ValueError(f"region size must be positive, got {size}")
    full, tail = divmod(size, stripe_size)
    lengths = [stripe_size] * full
    if tail:
        lengths.append(tail)
    return lengths
