"""RStore deployment configuration."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.simnet.config import KiB, MiB

__all__ = ["RStoreConfig"]


@dataclass
class RStoreConfig:
    """Knobs for master, memory servers and clients.

    The defaults mirror the paper's deployment style: one master, every
    other machine donating a DRAM arena pre-registered at startup, and
    regions striped across servers in fixed-size stripes for aggregate
    bandwidth.
    """

    #: host id running the master
    master_host: int = 0
    #: striping unit: a region is cut into stripes of this size, each
    #: placed on one memory server
    stripe_size: int = 1 * MiB
    #: DRAM each memory server donates (sparse-backed, so large values
    #: are cheap until written)
    server_capacity: int = 4096 * MiB
    #: stripe placement policy: "round_robin", "random" or "spread"
    allocation_policy: str = "round_robin"
    #: copies per stripe: 1 (the paper's volatile store) or more — an
    #: availability extension: writes fan to every replica, reads hit
    #: the primary, and the master promotes replicas when servers die
    default_replication: int = 1
    #: send-queue depth of client data QPs
    data_sq_depth: int = 256
    #: outstanding work requests per data QP: a small window keeps
    #: servers interleaving between clients (large bursts convoy a
    #: server's egress behind one client); real RNIC flow control
    #: behaves the same way
    data_window_per_qp: int = 8
    #: outstanding work requests per data QP for explicit ``IoBatch``
    #: submissions — callers who opted into batching asked for depth,
    #: so their window is deeper than the synchronous default (still
    #: capped well under ``data_sq_depth`` to leave room for
    #: stragglers of a broken batch)
    data_batch_window_per_qp: int = 32
    #: size of the client's registered staging pool for the convenience
    #: byte-oriented read/write API
    staging_pool_bytes: int = 16 * MiB
    #: control-plane RPC message size limit
    msg_size: int = 64 * KiB
    #: client-side software cost to issue one data operation (address
    #: translation, WQE setup) — what RStore adds over raw verbs
    issue_overhead_s: float = 0.2e-6
    #: ceiling on the wire size of one work request: larger transfers
    #: split into multiple WRs so concurrent flows interleave on the
    #: fabric at this granularity instead of convoying behind
    #: multi-megabyte messages
    max_wire_chunk: int = 1 * MiB
    #: memory-server heartbeat period
    heartbeat_interval_s: float = 0.1
    #: master declares a server dead after this long without a heartbeat
    lease_timeout_s: float = 0.35
    #: root seed for every derived deterministic RNG stream (placement
    #: randomness, client retry jitter, fault injection defaults)
    seed: int = 7
    #: concurrent stripe repairs the master's planner drives after a
    #: server death (each repair is one server→server stripe copy)
    repair_parallelism: int = 4
    #: how many times a repair task is re-attempted (fresh target/source)
    #: before the planner abandons the stripe as unrepairable for now
    repair_attempt_limit: int = 5
    #: data-path retries (remap + replay of failed sub-operations)
    #: before an error surfaces to the application
    data_retry_limit: int = 6
    #: first retry backoff; doubles per attempt (with jitter) up to the cap
    retry_backoff_base_s: float = 0.02
    retry_backoff_max_s: float = 0.3
    #: deadline for one control-plane call (connect + RPC + bounded
    #: reconnects); a client whose master is partitioned away fails with
    #: :class:`~repro.core.errors.DeadlineExceededError` once this drains
    control_deadline_s: float = 2.0
    #: optional end-to-end deadline for one data operation (map/read/
    #: write/atomic including every internal replay); ``None`` keeps the
    #: attempt-count bound (``data_retry_limit``) as the only budget
    op_deadline_s: float | None = None
    #: simulated latency of one metadata-log append (the fsync the
    #: master pays before acknowledging a mutating control RPC)
    metalog_append_s: float = 5e-6
    #: the master checkpoints its metadata and truncates the log every
    #: this many appended records
    metalog_checkpoint_every: int = 64
    #: how long a restarted master waits for servers to re-register
    #: before declaring the stragglers dead and re-queueing repairs
    recovery_grace_s: float = 0.5
    #: how long a server keeps re-trying to reach a crashed master
    #: before giving up and shutting down
    server_rejoin_deadline_s: float = 5.0
    #: ablation (E9): resolve region metadata at the master on every IO
    #: instead of caching it in the mapping
    resolve_per_io: bool = False
    #: ablation (E9): route data operations through the server CPU with
    #: two-sided messaging instead of one-sided RDMA
    two_sided_data_path: bool = False
    #: enable RSan, the happens-before race sanitizer for one-sided
    #: accesses (see repro.sanitize) — opt-in; the default path stays
    #: zero-cost and bit-identical with the flag off
    sanitize: bool = False
    #: metadata shards the control plane is partitioned into: each is a
    #: full master (own metalog, epoch, lease table, repair planner)
    #: addressed by consistent hashing over qualified region names;
    #: 1 reproduces the original single-master control plane exactly
    control_shards: int = 1
    #: client-side metadata cache: ``map`` serves descriptors from a
    #: leased cache and hits a shard at most once per epoch per region
    metadata_cache: bool = True
    #: how long a cached descriptor lease is valid before the next
    #: ``map`` re-validates it at its shard (epoch bumps and explicit
    #: invalidation cut it short)
    meta_lease_s: float = 5.0
    #: how long a cached *negative* entry (region does not exist)
    #: short-circuits ``map`` misses before re-asking the shard
    meta_negative_ttl_s: float = 0.05
    #: per-tenant capacity quotas in bytes of reserved (post-replication)
    #: arena space; tenants absent from the dict are unlimited.  Each
    #: shard enforces an even share (see ``core/shard.py``).
    tenant_quota_bytes: Optional[dict[str, int]] = field(default=None)
    #: default data-path policy for new mappings: "one_sided" (the
    #: classic client-driven path), "server_op" (composite ops execute
    #: on the owning server), "remote_fetch" (server computes, client
    #: READs the deposited result), or "adaptive" (per-op-class pick
    #: from observed latency — see ``repro.datapath.policy``)
    datapath_policy: str = "one_sided"
    #: size of each per-(client, server) remote-fetch deposit buffer;
    #: results larger than this fail loudly instead of truncating
    datapath_fetch_bytes: int = 256 * KiB
    #: adaptive selector: every Nth op per class re-samples a
    #: non-current mode so regime shifts are eventually observed
    datapath_probe_every: int = 32
    #: adaptive selector: a challenger must beat the current mode by
    #: this relative margin before a switch is even considered
    datapath_hysteresis: float = 0.2
    #: adaptive selector: consecutive challenger wins required to switch
    datapath_patience: int = 3
    #: adaptive selector: EWMA smoothing factor for observed latency
    datapath_ewma_alpha: float = 0.3

    #: service ids on the fabric
    master_service: str = "rstore-master"
    mem_service: str = "rstore-mem"
    data_service: str = "rstore-data"

    def __post_init__(self):
        if self.stripe_size <= 0:
            raise ValueError("stripe_size must be positive")
        if self.allocation_policy not in ("round_robin", "random", "spread"):
            raise ValueError(
                f"unknown allocation policy {self.allocation_policy!r}"
            )
        if self.repair_parallelism < 1:
            raise ValueError("repair_parallelism must be at least 1")
        if self.data_retry_limit < 0:
            raise ValueError("data_retry_limit cannot be negative")
        if self.data_batch_window_per_qp < 1:
            raise ValueError("data_batch_window_per_qp must be at least 1")
        if self.retry_backoff_base_s < 0 or self.retry_backoff_max_s < 0:
            raise ValueError("retry backoff durations cannot be negative")
        if self.control_deadline_s <= 0:
            raise ValueError("control_deadline_s must be positive")
        if self.op_deadline_s is not None and self.op_deadline_s <= 0:
            raise ValueError("op_deadline_s must be positive when set")
        if self.metalog_checkpoint_every < 1:
            raise ValueError("metalog_checkpoint_every must be at least 1")
        if self.recovery_grace_s < 0:
            raise ValueError("recovery_grace_s cannot be negative")
        if self.control_shards < 1:
            raise ValueError("control_shards must be at least 1")
        if self.meta_lease_s <= 0:
            raise ValueError("meta_lease_s must be positive")
        if self.meta_negative_ttl_s < 0:
            raise ValueError("meta_negative_ttl_s cannot be negative")
        # a literal tuple, not repro.datapath.PathPolicy: config must
        # stay importable without dragging in the data-path package
        if self.datapath_policy not in ("one_sided", "server_op",
                                        "remote_fetch", "adaptive"):
            raise ValueError(
                f"unknown datapath_policy {self.datapath_policy!r}"
            )
        if self.datapath_fetch_bytes <= 0:
            raise ValueError("datapath_fetch_bytes must be positive")
        if self.datapath_probe_every < 2:
            raise ValueError("datapath_probe_every must be at least 2")
        if not 0 <= self.datapath_hysteresis < 1:
            raise ValueError("datapath_hysteresis must be in [0, 1)")
        if self.datapath_patience < 1:
            raise ValueError("datapath_patience must be at least 1")
        if not 0 < self.datapath_ewma_alpha <= 1:
            raise ValueError("datapath_ewma_alpha must be in (0, 1]")
        if self.tenant_quota_bytes is not None:
            for tenant, quota in self.tenant_quota_bytes.items():
                if not tenant or "/" in tenant:
                    raise ValueError(f"bad tenant id {tenant!r}")
                if quota < 0:
                    raise ValueError(
                        f"tenant {tenant!r} quota cannot be negative"
                    )
