"""Client-side registered staging pool.

The convenience byte-oriented API (``read`` returning ``bytes``,
``write`` taking ``bytes``) needs registered local memory to DMA
through.  The pool registers one MR at client startup and hands out
chunks; callers that outgrow it should switch to the zero-copy API
(``read_into`` / ``write_from``) with their own registered buffers.
"""

from __future__ import annotations

from collections import deque

from repro.core.arena import Arena
from repro.core.errors import OutOfMemoryError, RStoreError
from repro.rdma.memory import MemoryRegion
from repro.simnet.kernel import Simulator

__all__ = ["LocalBufferPool", "PoolChunk"]


class PoolChunk:
    """A borrowed slice of the staging MR."""

    __slots__ = ("mr", "addr", "length", "_pool")

    def __init__(self, mr: MemoryRegion, addr: int, length: int, pool):
        self.mr = mr
        self.addr = addr
        self.length = length
        self._pool = pool

    @property
    def offset(self) -> int:
        return self.mr.offset_of(self.addr)

    def read_bytes(self, length: int | None = None) -> bytes:
        return self.mr.buffer.read(self.offset, length or self.length)

    def write_bytes(self, payload: bytes) -> None:
        if len(payload) > self.length:
            raise RStoreError("payload exceeds chunk")
        self.mr.buffer.write(self.offset, payload)

    def release(self) -> None:
        self._pool.free(self)


class LocalBufferPool:
    """Blocking allocator over one registered staging MR."""

    def __init__(self, sim: Simulator, mr: MemoryRegion):
        self.sim = sim
        self.mr = mr
        self._arena = Arena(mr.addr, mr.length)
        self._waiters: deque[tuple[int, object]] = deque()

    @property
    def capacity(self) -> int:
        return self.mr.length

    @property
    def free_bytes(self) -> int:
        return self._arena.free_bytes

    def alloc(self, length: int):
        """Borrow a chunk (generator); blocks until space frees up."""
        if length > self.capacity:
            raise OutOfMemoryError(
                f"request of {length} bytes exceeds the staging pool "
                f"({self.capacity} bytes); use the zero-copy API with "
                "your own registered buffer"
            )
        while True:
            # not a network retry: parks on an event until a chunk is
            # released, like a condition variable
            try:  # repro-lint: allow[RL005]
                addr = self._arena.reserve(length)
            except OutOfMemoryError:
                event = self.sim.event()
                self._waiters.append((length, event))
                yield event
                continue
            return PoolChunk(self.mr, addr, length, self)

    def free(self, chunk: PoolChunk) -> None:
        self._arena.release(chunk.addr)
        # Wake every parked waiter; each retries its reservation (simple
        # and starvation-free enough for a staging pool).
        while self._waiters:
            _length, event = self._waiters.popleft()
            if not event.triggered:
                event.succeed()
