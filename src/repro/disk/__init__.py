"""Rotating-disk model backing the Hadoop TeraSort baseline."""

from repro.disk.disk import Disk, DiskModel

__all__ = ["Disk", "DiskModel"]
