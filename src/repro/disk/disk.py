"""A simple spindle model: sequential bandwidth plus seeks.

The TeraSort comparator in the paper runs on HDFS over local disks;
its runtime is dominated by the multiple passes map-reduce makes over
the data.  The model therefore needs exactly two behaviours: sustained
sequential bandwidth, and a seek penalty when an access is random.
Concurrent requests serialize on the spindle (a capacity-1 resource).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.simnet.config import ms
from repro.simnet.kernel import Simulator
from repro.simnet.resources import Resource

__all__ = ["DiskModel", "Disk"]


@dataclass
class DiskModel:
    """A 7.2k-rpm SATA drive of the paper's era."""

    read_bandwidth_Bps: float = 160e6
    write_bandwidth_Bps: float = 140e6
    seek_s: float = ms(8.0)


class Disk:
    """One spindle; reads and writes are generators charging time."""

    def __init__(self, sim: Simulator, model: Optional[DiskModel] = None,
                 name: str = "disk"):
        self.sim = sim
        self.model = model or DiskModel()
        self.name = name
        self._spindle = Resource(sim, capacity=1)
        self.bytes_read = 0
        self.bytes_written = 0
        self.seeks = 0

    def read(self, nbytes: int, sequential: bool = True):
        """Read *nbytes* (generator)."""
        yield from self._access(nbytes, self.model.read_bandwidth_Bps, sequential)
        self.bytes_read += nbytes

    def write(self, nbytes: int, sequential: bool = True):
        """Write *nbytes* (generator)."""
        yield from self._access(nbytes, self.model.write_bandwidth_Bps, sequential)
        self.bytes_written += nbytes

    def _access(self, nbytes: int, bandwidth: float, sequential: bool):
        if nbytes < 0:
            raise ValueError(f"negative access size {nbytes}")
        duration = nbytes / bandwidth
        if not sequential:
            duration += self.model.seek_s
            self.seeks += 1
        yield from self._spindle.occupy(duration)
