"""The RStore-backed BSP engine.

Data layout in the store (for an engine tagged ``g``):

================  =========================  ===========================
region            size                       contents
================  =========================  ===========================
``g.indptr``      (n+1) * 8                  in-edge CSR row pointers
``g.sources``     m * 8                      in-edge sources
``g.weights``     m * 8 (optional)           edge weights
``g.outdeg``      n * 8                      out-degrees
``g.state0/1``    n * 8 each                 double-buffered vertex state
================  =========================  ===========================

Workers fetch their topology slice once at setup, then per superstep:
gather the full state vector with one-sided reads (striped over every
memory server — the aggregate-bandwidth path), apply the vertex program
(explicit CPU cost), scatter their slice, and detect convergence
entirely on one-sided atomics — a :class:`~repro.coord.SenseBarrier`
plus a cumulative :class:`~repro.coord.AtomicCounter` replace the old
per-superstep allreduce RPC through the master.  After setup the master
is never contacted again; ``stats.steady_state_master_calls`` (asserted
zero in tests) proves it.

The convergence protocol per superstep: every worker FAAs its change
count into the shared counter, waits at the barrier (all contributions
are in), reads the cumulative total once and differences it against the
previous round's total, then waits at the barrier again so nobody's
next-round FAA races a straggler's read.  The counter is never reset —
monotonic accumulation plus local differencing sidesteps the
who-zeroes-it race entirely.
"""

from __future__ import annotations

from dataclasses import dataclass
from types import SimpleNamespace
from typing import Optional

import numpy as np

from repro.cluster.builder import Cluster
from repro.coord import AtomicCounter, SenseBarrier
from repro.graph.loader import Graph, partition_by_edges
from repro.simnet.config import MiB

__all__ = ["GraphComputeModel", "RStoreGraphEngine", "write_array", "read_bytes"]

_IO_CHUNK = 4 * MiB


@dataclass
class GraphComputeModel:
    """Explicit CPU cost of graph computation (wall time is not data).

    ``per_edge_s`` is the cost of a bulk CSR kernel over in-memory
    arrays (a few ns/edge, what RStore's memory-like API enables).
    ``baseline_message_per_edge_s`` is the *additional* per-edge cost a
    gather/scatter message-passing engine pays — message construction,
    combiner hash updates, dispatch — calibrated to published
    GraphLab/PowerGraph PageRank rates (~100 ns/edge end-to-end on 2015
    hardware; we attribute ~3 ns to the arithmetic both engines share
    and the rest, conservatively trimmed to 15 ns, to the machinery).
    """

    #: gather + multiply-accumulate per in-edge (bulk array kernel)
    per_edge_s: float = 3e-9
    #: apply/update per vertex per superstep
    per_vertex_s: float = 12e-9
    #: extra per-edge message machinery in the message-passing baseline
    baseline_message_per_edge_s: float = 15e-9

    def superstep_cost(self, num_edges: int, num_vertices: int) -> float:
        return num_edges * self.per_edge_s + num_vertices * self.per_vertex_s

    def baseline_superstep_cost(self, num_edges: int, num_vertices: int) -> float:
        return (
            num_edges * (self.per_edge_s + self.baseline_message_per_edge_s)
            + num_vertices * self.per_vertex_s
        )


def write_array(mapping, offset: int, data: bytes):
    """Write a large byte blob through the staging pool, chunked (generator)."""
    pos = 0
    while pos < len(data):
        piece = data[pos : pos + _IO_CHUNK]
        yield from mapping.write(offset + pos, piece)
        pos += len(piece)


def read_bytes(mapping, offset: int, length: int):
    """Chunked read through the staging pool (generator); returns bytes."""
    parts = []
    pos = 0
    while pos < length:
        take = min(_IO_CHUNK, length - pos)
        parts.append((yield from mapping.read(offset + pos, take)))
        pos += take
    return b"".join(parts)


class _PartitionView:
    """A worker's local view: global metadata plus its CSR slice."""

    def __init__(self, num_vertices, lo, hi, indptr_local, sources, weights,
                 out_degrees):
        self.num_vertices = num_vertices
        self.lo = lo
        self.hi = hi
        self._indptr_local = indptr_local
        self._sources = sources
        self._weights = weights
        self.out_degrees = out_degrees

    @property
    def num_local_edges(self) -> int:
        return len(self._sources)

    def slice_csr(self, lo, hi):
        assert lo == self.lo and hi == self.hi, "view holds exactly one slice"
        return self._indptr_local, self._sources, self._weights


class RStoreGraphEngine:
    """Distributed BSP graph processing on the memory-like API."""

    def __init__(
        self,
        cluster: Cluster,
        graph: Graph,
        worker_hosts: Optional[list[int]] = None,
        compute: Optional[GraphComputeModel] = None,
        tag: str = "g",
    ):
        self.cluster = cluster
        self.graph = graph
        self.worker_hosts = worker_hosts or list(range(cluster.num_machines))
        self.compute = compute or GraphComputeModel()
        self.tag = tag
        self.parts = partition_by_edges(graph, len(self.worker_hosts))
        self.load_elapsed: Optional[float] = None
        self._loaded = False

    @property
    def num_workers(self) -> int:
        return len(self.worker_hosts)

    # -- load phase ----------------------------------------------------------

    def load(self):
        """Ship the graph into the store (generator, coordinator-driven)."""
        sim = self.cluster.sim
        graph, tag = self.graph, self.tag
        n, m = graph.num_vertices, graph.num_edges
        client = self.cluster.client(self.worker_hosts[0])
        t0 = sim.now
        layout = {
            f"{tag}.indptr": graph.indptr.astype(np.int64).tobytes(),
            f"{tag}.sources": graph.sources.astype(np.int64).tobytes(),
            f"{tag}.outdeg": graph.out_degrees.astype(np.int64).tobytes(),
        }
        if graph.weights is not None:
            layout[f"{tag}.weights"] = graph.weights.astype(np.float64).tobytes()
        for name, blob in layout.items():
            yield from client.alloc(name, len(blob))
            mapping = yield from client.map(name)
            yield from write_array(mapping, 0, blob)
        for state in ("state0", "state1"):
            yield from client.alloc(f"{tag}.{state}", max(n * 8, 8))
        self.load_elapsed = sim.now - t0
        self._loaded = True

    # -- run phase ---------------------------------------------------------------

    def run(self, program):
        """Execute *program* to convergence (generator).

        Returns a namespace with ``values`` (the final vector),
        ``iterations``, ``elapsed`` (simulated seconds of the iteration
        phase) and ``setup_elapsed`` (worker setup: partition fetch,
        mapping, initial scatter).  The split mirrors what the paper's
        tables report — steady-state computation, not connection setup.
        """
        if not self._loaded:
            # the job driver: loading the graph on first use is the
            # sanctioned control/data phase transition, and everything
            # through worker setup is billed to setup_elapsed below —
            # the steady-state loop never takes this hop
            yield from self.load()  # repro-lint: allow[RL008]
        sim = self.cluster.sim
        results: dict[int, np.ndarray] = {}
        stats = SimpleNamespace(values=None, iterations=0, elapsed=0.0,
                                setup_elapsed=0.0,
                                steady_state_master_calls=0)

        t_setup = sim.now
        # Coordination regions (control path, once): the superstep
        # barrier and the cumulative change counter every worker FAAs
        # into.  After this point convergence detection never touches
        # the master.
        coordinator = self.cluster.client(self.worker_hosts[0])
        yield from SenseBarrier.create(
            coordinator, f"{self.tag}.bsp", parties=self.num_workers
        )
        yield from AtomicCounter.create(coordinator, f"{self.tag}.changed")
        contexts: dict[int, SimpleNamespace] = {}
        setup = [
            sim.process(
                self._worker_setup(rank, program, contexts),
                name=f"{self.tag}-setup-{rank}",
            )
            for rank in range(self.num_workers)
        ]
        yield sim.all_of(setup)
        stats.setup_elapsed = sim.now - t_setup
        calls_after_setup = self._master_calls()

        t0 = sim.now
        procs = [
            sim.process(
                self._worker_loop(contexts[rank], program, results, stats),
                name=f"{self.tag}-worker-{rank}",
            )
            for rank in range(self.num_workers)
        ]
        yield sim.all_of(procs)
        stats.elapsed = sim.now - t0
        stats.steady_state_master_calls = (
            self._master_calls() - calls_after_setup
        )
        full = np.concatenate([results[r] for r in range(self.num_workers)])
        stats.values = full
        return stats

    def _master_calls(self) -> int:
        """Total control-path RPCs issued by the worker clients."""
        clients = {self.cluster.client(h) for h in self.worker_hosts}
        return sum(client.master_calls for client in clients)

    def _worker_setup(self, rank: int, program, contexts: dict):
        """Control path: fetch topology, map state, register buffers."""
        tag = self.tag
        host_id = self.worker_hosts[rank]
        client = self.cluster.client(host_id)
        lo, hi = self.parts[rank]
        n = self.graph.num_vertices

        part = yield from self._fetch_partition(client, program, lo, hi)
        state0 = yield from client.map(f"{tag}.state0")
        state1 = yield from client.map(f"{tag}.state1")
        barrier = yield from SenseBarrier.open(
            client, f"{tag}.bsp", parties=self.num_workers
        )
        counter = yield from AtomicCounter.open(client, f"{tag}.changed")
        gather_mr = yield from client.alloc_local(max(n * 8, 8))
        scatter_mr = yield from client.alloc_local(max((hi - lo) * 8, 8))
        contexts[rank] = SimpleNamespace(
            rank=rank,
            client=client,
            cpu=self.cluster.net.host(host_id).cpu,
            lo=lo,
            hi=hi,
            part=part,
            state=[state0, state1],
            barrier=barrier,
            counter=counter,
            gather_mr=gather_mr,
            scatter_mr=scatter_mr,
        )

    def _worker_loop(self, ctx, program, results: dict, stats):
        cpu = ctx.cpu
        client = ctx.client
        lo, hi, part = ctx.lo, ctx.hi, ctx.part
        n = self.graph.num_vertices

        def scatter_async(mapping, values):
            """Submit this slice's scatter; returns its future."""
            blob = values.tobytes()
            yield from cpu.copy(len(blob))
            ctx.scatter_mr.buffer.write(0, blob)
            batch = client.batch()
            fut = batch.write_from(
                mapping, ctx.scatter_mr, ctx.scatter_mr.addr, lo * 8,
                len(blob)
            )
            yield from batch.flush()
            return fut

        local = program.initial(part, lo, hi)
        fut = yield from scatter_async(ctx.state[0], local)
        yield from fut.wait()
        # everyone's initial scatter is visible before the first gather
        yield from ctx.barrier.wait()

        cur = 0
        iteration = 0
        seen_total = 0
        while True:
            step_span = client.obs.tracer.span(
                "app.graph.superstep", kind="app", rank=ctx.rank,
                iteration=iteration,
            )
            # gather every remote vertex stripe with one batched flush:
            # the striped pieces go out per-QP under doorbell batching
            # instead of trickling through the synchronous window
            gather = client.batch()
            gfut = gather.read_into(
                ctx.state[cur], ctx.gather_mr, ctx.gather_mr.addr, 0, n * 8
            )
            yield from gather.flush()
            yield from gfut.wait()
            x = np.frombuffer(
                ctx.gather_mr.buffer.read(0, n * 8), dtype=np.float64
            )
            yield from cpu.run(
                self.compute.superstep_cost(part.num_local_edges, hi - lo)
            )
            local, changed = program.apply(part, x, lo, hi)
            # overlap the scatter of this slice with the convergence
            # FAA; both must only be visible before the barrier
            sfut = yield from scatter_async(ctx.state[1 - cur], local)
            yield from ctx.counter.add(int(changed))
            yield from sfut.wait()
            yield from ctx.barrier.wait()
            cumulative = yield from ctx.counter.read()
            total = cumulative - seen_total
            seen_total = cumulative
            iteration += 1
            step_span.finish(changed=total)
            if program.done(iteration, total):
                break
            # keep next round's FAAs from racing a straggler's read
            yield from ctx.barrier.wait()
            cur = 1 - cur

        results[ctx.rank] = local
        if ctx.rank == 0:
            stats.iterations = iteration

    def _fetch_partition(self, client, program, lo: int, hi: int):
        """Pull this worker's topology slice out of the store (generator)."""
        tag = self.tag
        n = self.graph.num_vertices

        indptr_map = yield from client.map(f"{tag}.indptr")
        blob = yield from read_bytes(indptr_map, lo * 8, (hi - lo + 1) * 8)
        indptr_global = np.frombuffer(blob, dtype=np.int64)
        e_lo, e_hi = int(indptr_global[0]), int(indptr_global[-1])
        indptr_local = indptr_global - e_lo

        sources_map = yield from client.map(f"{tag}.sources")
        blob = yield from read_bytes(sources_map, e_lo * 8, (e_hi - e_lo) * 8)
        sources = np.frombuffer(blob, dtype=np.int64)

        weights = None
        if getattr(program, "needs_weights", False):
            weights_map = yield from client.map(f"{tag}.weights")
            blob = yield from read_bytes(weights_map, e_lo * 8, (e_hi - e_lo) * 8)
            weights = np.frombuffer(blob, dtype=np.float64)

        outdeg_map = yield from client.map(f"{tag}.outdeg")
        blob = yield from read_bytes(outdeg_map, 0, n * 8)
        out_degrees = np.frombuffer(blob, dtype=np.int64)

        return _PartitionView(
            n, lo, hi, indptr_local, sources, weights, out_degrees
        )
