"""Vertex programs: the algorithm layer shared by both engines.

A program is pure computation over numpy arrays — it never talks to the
network.  The engines (RStore-backed or message-passing) own all data
movement, so a benchmark comparing them compares substrates, not
algorithm implementations.

Contract: ``apply(graph, x, lo, hi)`` computes the next values of the
vertices in ``[lo, hi)`` from the full current vector ``x`` and the
graph's in-edge CSR, returning ``(new_local, changed_count)``.
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "PageRankProgram",
    "PersonalizedPageRankProgram",
    "BfsProgram",
    "SsspProgram",
    "WccProgram",
]

UNREACHED = np.float64(np.inf)


def _segment_reduce_min(indptr, values):
    """Per-row minimum of a CSR-segmented value array (inf for empty)."""
    out = np.full(len(indptr) - 1, np.inf)
    nonempty = np.flatnonzero(np.diff(indptr) > 0)
    if len(values) == 0 or len(nonempty) == 0:
        return out
    out[nonempty] = np.minimum.reduceat(values, indptr[nonempty])
    return out


class PageRankProgram:
    """Pull-style PageRank with uniform handling of dangling mass."""

    name = "pagerank"
    needs_weights = False

    def __init__(self, damping: float = 0.85, iterations: int = 10):
        self.damping = damping
        self.iterations = iterations

    def initial(self, graph, lo: int, hi: int) -> np.ndarray:
        return np.full(hi - lo, 1.0 / graph.num_vertices)

    def apply(self, graph, x: np.ndarray, lo: int, hi: int):
        # contribution of every vertex: rank / out-degree (0 if dangling)
        contrib = np.where(graph.out_degrees > 0, x / np.maximum(graph.out_degrees, 1), 0.0)
        dangling = x[graph.out_degrees == 0].sum()
        indptr, sources, _w = graph.slice_csr(lo, hi)
        gathered = contrib[sources]
        sums = np.zeros(hi - lo)
        nonempty = np.flatnonzero(np.diff(indptr) > 0)
        if len(gathered) and len(nonempty):
            sums[nonempty] = np.add.reduceat(gathered, indptr[nonempty])
        n = graph.num_vertices
        new = (1.0 - self.damping) / n + self.damping * (sums + dangling / n)
        return new, hi - lo  # ranks always "change"; iteration-bounded

    def done(self, iteration: int, total_changed: int) -> bool:
        return iteration >= self.iterations


class PersonalizedPageRankProgram(PageRankProgram):
    """PageRank with teleportation to a single source vertex.

    The random surfer restarts at ``source`` instead of a uniform
    vertex, giving proximity scores relative to the source — the
    recommendation-style workload of the era.
    """

    name = "ppr"

    def __init__(self, source: int, damping: float = 0.85,
                 iterations: int = 10):
        super().__init__(damping=damping, iterations=iterations)
        self.source = source

    def initial(self, graph, lo: int, hi: int) -> np.ndarray:
        values = np.zeros(hi - lo)
        if lo <= self.source < hi:
            values[self.source - lo] = 1.0
        return values

    def apply(self, graph, x: np.ndarray, lo: int, hi: int):
        contrib = np.where(
            graph.out_degrees > 0, x / np.maximum(graph.out_degrees, 1), 0.0
        )
        dangling = x[graph.out_degrees == 0].sum()
        indptr, sources, _w = graph.slice_csr(lo, hi)
        gathered = contrib[sources]
        sums = np.zeros(hi - lo)
        nonempty = np.flatnonzero(np.diff(indptr) > 0)
        if len(gathered) and len(nonempty):
            sums[nonempty] = np.add.reduceat(gathered, indptr[nonempty])
        new = self.damping * sums
        # all teleport/dangling mass restarts at the source vertex
        if lo <= self.source < hi:
            new[self.source - lo] += (
                1.0 - self.damping
            ) + self.damping * dangling
        return new, hi - lo


class _MinPlusProgram:
    """Shared shape of BFS/SSSP: iterate x_v = min(x_v, min_u x_u + w)."""

    needs_weights = False
    max_iterations = 10_000

    def __init__(self, source: int = 0):
        self.source = source

    def initial(self, graph, lo: int, hi: int) -> np.ndarray:
        values = np.full(hi - lo, UNREACHED)
        if lo <= self.source < hi:
            values[self.source - lo] = 0.0
        return values

    def edge_costs(self, weights, count):
        raise NotImplementedError

    def apply(self, graph, x: np.ndarray, lo: int, hi: int):
        indptr, sources, weights = graph.slice_csr(lo, hi)
        costs = self.edge_costs(weights, len(sources))
        candidate = _segment_reduce_min(indptr, x[sources] + costs)
        old = x[lo:hi]
        new = np.minimum(old, candidate)
        changed = int((new < old).sum())
        return new, changed

    def done(self, iteration: int, total_changed: int) -> bool:
        return total_changed == 0 or iteration >= self.max_iterations


class BfsProgram(_MinPlusProgram):
    """Level-synchronous BFS (hop distances from a source)."""

    name = "bfs"

    def edge_costs(self, weights, count):
        return 1.0


class SsspProgram(_MinPlusProgram):
    """Bellman-Ford style single-source shortest paths."""

    name = "sssp"
    needs_weights = True

    def edge_costs(self, weights, count):
        if weights is None:
            raise ValueError("SSSP needs edge weights")
        return weights


class WccProgram:
    """Weakly connected components by min-label propagation.

    Note: propagation follows edge direction; for true *weak*
    components, feed the engine a symmetrized graph.
    """

    name = "wcc"
    needs_weights = False
    max_iterations = 10_000

    def initial(self, graph, lo: int, hi: int) -> np.ndarray:
        return np.arange(lo, hi, dtype=np.float64)

    def apply(self, graph, x: np.ndarray, lo: int, hi: int):
        indptr, sources, _w = graph.slice_csr(lo, hi)
        candidate = _segment_reduce_min(indptr, x[sources])
        old = x[lo:hi]
        new = np.minimum(old, candidate)
        changed = int((new < old).sum())
        return new, changed

    def done(self, iteration: int, total_changed: int) -> bool:
        return total_changed == 0 or iteration >= self.max_iterations
