"""The message-passing comparator (GraphLab/Pregel-class substrate).

Runs the *same* vertex programs as the RStore engine, but state moves
by all-gather over the kernel sockets stack: each superstep every
worker broadcasts its freshly computed slice to every other worker.
The broadcast doubles as the synchronization barrier (nobody can start
superstep k+1 before holding all k-slices), and convergence counts
piggyback on the slice messages — faithful to how message-passing
frameworks overlap sync with data exchange.

Topology is held locally per worker (such frameworks load from local
disk/HDFS at startup); only the run phase is timed, matching what the
paper's table compares.
"""

from __future__ import annotations

from types import SimpleNamespace
from typing import Optional

import numpy as np

from repro.cluster.builder import Cluster
from repro.graph.framework import GraphComputeModel
from repro.graph.loader import Graph, partition_by_edges

__all__ = ["MessagePassingEngine"]

_BASE_PORT = 7400


class MessagePassingEngine:
    """BSP over TCP all-gather; the paper's state-of-the-art stand-in."""

    def __init__(
        self,
        cluster: Cluster,
        graph: Graph,
        worker_hosts: Optional[list[int]] = None,
        compute: Optional[GraphComputeModel] = None,
        tag: str = "mp",
    ):
        self.cluster = cluster
        self.graph = graph
        self.worker_hosts = worker_hosts or list(range(cluster.num_machines))
        self.compute = compute or GraphComputeModel()
        self.tag = tag
        self.parts = partition_by_edges(graph, len(self.worker_hosts))

    @property
    def num_workers(self) -> int:
        return len(self.worker_hosts)

    def run(self, program):
        """Execute *program* to convergence (generator); see RStore engine."""
        sim = self.cluster.sim
        sockets = yield from self._build_mesh()
        results: dict[int, np.ndarray] = {}
        stats = SimpleNamespace(values=None, iterations=0, elapsed=0.0)
        t0 = sim.now
        procs = [
            sim.process(
                self._worker(rank, program, sockets, results, stats),
                name=f"{self.tag}-worker-{rank}",
            )
            for rank in range(self.num_workers)
        ]
        yield sim.all_of(procs)
        stats.elapsed = sim.now - t0
        stats.values = np.concatenate(
            [results[r] for r in range(self.num_workers)]
        )
        return stats

    def _build_mesh(self):
        """Pairwise sockets between workers (generator); untimed setup
        happens before t0 just like the engines' connection caches."""
        sim = self.cluster.sim
        stacks = {
            rank: self.cluster.tcp_stacks[host]
            for rank, host in enumerate(self.worker_hosts)
        }
        sockets: dict[int, dict[int, object]] = {
            rank: {} for rank in range(self.num_workers)
        }
        # stable per-tag port (str.hash is randomized across processes)
        port = _BASE_PORT + sum(self.tag.encode()) % 97
        listeners = {}
        accepts = []
        for rank in range(self.num_workers):
            listeners[rank] = stacks[rank].listen(port)

        def accept_side(rank, expected):
            for _ in range(expected):
                sock = yield from listeners[rank].accept()
                peer = yield from sock.recv()  # hello carries the rank
                sockets[rank][peer] = sock

        for rank in range(self.num_workers):
            # rank accepts one connection from every lower-ranked worker
            accepts.append(
                sim.process(accept_side(rank, rank))
            )

        def dial():
            # each worker dials every higher-ranked worker
            for lo in range(self.num_workers):
                for hi in range(lo + 1, self.num_workers):
                    sock = yield from stacks[lo].connect(stacks[hi], port)
                    yield from sock.send(lo)
                    sockets[lo][hi] = sock

        yield sim.all_of([sim.process(dial()), *accepts])
        for listener in listeners.values():
            listener.close()
        return sockets

    def _worker(self, rank, program, sockets, results, stats):
        cpu = self.cluster.net.host(self.worker_hosts[rank]).cpu
        lo, hi = self.parts[rank]
        graph = self.graph
        n = graph.num_vertices
        workers = self.num_workers
        peers = sockets[rank]

        local = program.initial(graph, lo, hi)
        x = np.zeros(n)
        #: (sender, round) -> message; a fast peer's round k+1 slice can
        #: arrive while we still wait on a slow peer's round k
        stash: dict[tuple[int, int], tuple] = {}

        def exchange(round_no, values, changed):
            """All-gather this worker's slice; returns total changed."""
            blob = values.tobytes()
            for peer in peers.values():
                # serialize once per peer (kernel copies are charged by
                # the socket; this is the app-level marshalling)
                yield from cpu.copy(len(blob))
                yield from peer.send((rank, round_no, changed, blob))
            x[lo:hi] = values
            total = changed
            needed = {s for s in range(workers) if s != rank}
            while needed:
                hit = next(
                    (s for s in needed if (s, round_no) in stash), None
                )
                if hit is not None:
                    _s, _r, peer_changed, peer_blob = stash.pop(
                        (hit, round_no)
                    )
                    needed.discard(hit)
                else:
                    msg = yield from self._recv_any(peers, rank)
                    sender, msg_round = msg[0], msg[1]
                    if msg_round != round_no:
                        stash[(sender, msg_round)] = msg
                        continue
                    _s, _r, peer_changed, peer_blob = msg
                    needed.discard(sender)
                plo, phi = self.parts[_s]
                x[plo:phi] = np.frombuffer(peer_blob, dtype=np.float64)
                total += peer_changed
            return total

        yield from exchange(0, local, 0)
        iteration = 0
        while True:
            yield from cpu.run(
                self.compute.baseline_superstep_cost(
                    int(graph.indptr[hi] - graph.indptr[lo]), hi - lo
                )
            )
            local, changed = program.apply(graph, x, lo, hi)
            total = yield from exchange(iteration + 1, local, changed)
            iteration += 1
            if program.done(iteration, total):
                break
        results[rank] = local
        if rank == 0:
            stats.iterations = iteration

    def _recv_any(self, peers, rank):
        """Receive the next slice message from any peer (generator)."""
        # Each pairwise socket preserves order; fan-in across peers via
        # a shared inbox process started lazily per worker.
        inbox = getattr(self, "_inboxes", None)
        if inbox is None:
            self._inboxes = {}
            inbox = self._inboxes
        box = inbox.get(rank)
        if box is None:
            from repro.simnet.resources import Store

            box = Store(self.cluster.sim)
            inbox[rank] = box

            def pump(sock):
                while True:
                    msg = yield from sock.recv()
                    if msg is None:
                        return
                    box.put(msg)

            for sock in peers.values():
                self.cluster.sim.process(pump(sock))
        msg = yield box.get()
        return msg
