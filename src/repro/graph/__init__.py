"""RGraph: the paper's distributed graph-processing framework.

A partitioned bulk-synchronous engine whose vertex state lives in
RStore regions.  Each superstep a worker gathers the current state
vector with large one-sided reads (striped across every memory server,
so the gather runs at aggregate fabric bandwidth), applies the vertex
program over its partition with an explicit per-edge CPU cost, scatters
its slice back with one-sided writes, and synchronizes through the
master.  The comparison baseline
(:class:`~repro.graph.baseline.MessagePassingEngine`) runs the *same*
vertex programs over TCP all-gather exchanges — the substrate is the
only difference, which is exactly the paper's claim.
"""

from repro.graph.algorithms import (
    BfsProgram,
    PageRankProgram,
    PersonalizedPageRankProgram,
    SsspProgram,
    WccProgram,
)
from repro.graph.baseline import MessagePassingEngine
from repro.graph.framework import GraphComputeModel, RStoreGraphEngine
from repro.graph.loader import Graph, partition_ranges

__all__ = [
    "BfsProgram",
    "Graph",
    "GraphComputeModel",
    "MessagePassingEngine",
    "PageRankProgram",
    "PersonalizedPageRankProgram",
    "RStoreGraphEngine",
    "SsspProgram",
    "WccProgram",
    "partition_ranges",
]
