"""Graph representation and partitioning.

Graphs are stored in **in-edge CSR** form: for each target vertex, the
list of its sources.  That is the layout a pull-style BSP engine needs
(new value of v = f(values of v's in-neighbours)), and it is what the
engines ship into RStore regions at load time.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

__all__ = ["Graph", "partition_ranges", "partition_by_edges"]


class Graph:
    """An immutable directed graph in in-edge CSR form."""

    def __init__(
        self,
        num_vertices: int,
        indptr: np.ndarray,
        sources: np.ndarray,
        weights: Optional[np.ndarray] = None,
        out_degrees: Optional[np.ndarray] = None,
    ):
        if len(indptr) != num_vertices + 1:
            raise ValueError("indptr must have num_vertices + 1 entries")
        self.num_vertices = num_vertices
        #: indptr[v]..indptr[v+1] indexes v's in-edges in ``sources``
        self.indptr = indptr
        #: source vertex of every in-edge
        self.sources = sources
        #: optional edge weights, aligned with ``sources``
        self.weights = weights
        self.out_degrees = (
            out_degrees
            if out_degrees is not None
            else np.bincount(sources, minlength=num_vertices).astype(np.int64)
        )

    @property
    def num_edges(self) -> int:
        return len(self.sources)

    @classmethod
    def from_edges(
        cls,
        num_vertices: int,
        src: np.ndarray,
        dst: np.ndarray,
        weights: Optional[np.ndarray] = None,
    ) -> "Graph":
        """Build the in-edge CSR from an edge list (kept as multigraph)."""
        if len(src) != len(dst):
            raise ValueError("src and dst must have equal length")
        if len(src) and (src.max() >= num_vertices or dst.max() >= num_vertices):
            raise ValueError("edge endpoint out of range")
        order = np.argsort(dst, kind="stable")
        sorted_dst = dst[order]
        sources = src[order].astype(np.int64)
        counts = np.bincount(sorted_dst, minlength=num_vertices)
        indptr = np.zeros(num_vertices + 1, dtype=np.int64)
        np.cumsum(counts, out=indptr[1:])
        sorted_weights = (
            weights[order].astype(np.float64) if weights is not None else None
        )
        out_degrees = np.bincount(src, minlength=num_vertices).astype(np.int64)
        return cls(num_vertices, indptr, sources, sorted_weights, out_degrees)

    def in_edges_of(self, vertex: int) -> np.ndarray:
        return self.sources[self.indptr[vertex] : self.indptr[vertex + 1]]

    def slice_csr(self, lo: int, hi: int):
        """The CSR rows for vertices [lo, hi): (local indptr, sources, weights)."""
        base = self.indptr[lo]
        indptr = self.indptr[lo : hi + 1] - base
        sources = self.sources[self.indptr[lo] : self.indptr[hi]]
        weights = (
            self.weights[self.indptr[lo] : self.indptr[hi]]
            if self.weights is not None
            else None
        )
        return indptr, sources, weights


def partition_ranges(num_vertices: int, num_parts: int) -> list[tuple[int, int]]:
    """Contiguous, near-equal vertex ranges [lo, hi) per partition."""
    if num_parts < 1:
        raise ValueError("need at least one partition")
    bounds = np.linspace(0, num_vertices, num_parts + 1).astype(np.int64)
    return [(int(bounds[i]), int(bounds[i + 1])) for i in range(num_parts)]


def partition_by_edges(graph: Graph, num_parts: int) -> list[tuple[int, int]]:
    """Contiguous vertex ranges balanced by in-edge count.

    Power-law graphs concentrate edges on few hubs; splitting by vertex
    count alone leaves one worker holding most of the edges (a straggler
    every superstep).  Balancing on the CSR row pointer equalizes work.
    """
    if num_parts < 1:
        raise ValueError("need at least one partition")
    n = graph.num_vertices
    total = graph.num_edges
    targets = np.linspace(0, total, num_parts + 1)
    cuts = np.searchsorted(graph.indptr, targets[1:-1], side="left")
    bounds = np.concatenate(([0], cuts, [n])).astype(np.int64)
    # ranges must be non-decreasing and cover [0, n)
    bounds = np.maximum.accumulate(bounds)
    return [(int(bounds[i]), int(bounds[i + 1])) for i in range(num_parts)]
