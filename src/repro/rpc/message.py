"""RPC wire messages.

Requests and responses are pickled for transmission, which gives every
message an honest byte size without hand-maintained size tables.  The
optional ``wire_size`` override follows the repository-wide convention
for scaled experiments.
"""

from __future__ import annotations

import pickle
from dataclasses import dataclass, field
from typing import Any, Optional

__all__ = ["RpcRequest", "RpcResponse", "encoded", "decoded"]


@dataclass
class RpcRequest:
    call_id: int
    method: str
    args: tuple = ()
    #: logical payload size; None means "the pickled size"
    wire_size: Optional[int] = None


@dataclass
class RpcResponse:
    call_id: int
    result: Any = None
    #: stringified remote exception, None on success
    error: Optional[str] = None
    error_type: str = ""
    wire_size: Optional[int] = None


def encoded(message: Any) -> bytes:
    """Serialize a message for the wire."""
    return pickle.dumps(message)


def decoded(payload: bytes) -> Any:
    """Deserialize a wire payload."""
    return pickle.loads(payload)
