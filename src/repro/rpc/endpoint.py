"""RPC endpoints over the RDMA message channel and over TCP sockets.

Handlers are generator functions registered by name::

    def lookup(key):
        yield from host.cpu.run(us(1))
        return table[key]

    server.register("lookup", lookup)

Clients call them with ``result = yield from client.call("lookup", key)``.
Remote exceptions re-raise locally as :class:`RpcRemoteError`.
"""

from __future__ import annotations

import itertools
from typing import Callable, Optional

from repro.rdma.cm import ConnectionManager
from repro.rdma.nic import RNic
from repro.rdma.qp import QueuePair
from repro.rpc.channel import ChannelClosed, RdmaMsgChannel
from repro.rpc.message import RpcRequest, RpcResponse
from repro.simnet.config import KiB, us
from repro.simnet.kernel import Event, Simulator

__all__ = [
    "RpcError",
    "RpcRemoteError",
    "RpcTimeout",
    "RpcServer",
    "RpcClient",
    "TcpRpcServer",
    "TcpRpcClient",
]

#: CPU time a server spends dispatching one request (lookup + scheduling)
DISPATCH_CPU_S = us(1.0)


class RpcError(Exception):
    """Local RPC failure (connection lost, protocol violation)."""


class RpcTimeout(RpcError):
    """The call did not complete within its deadline."""


class RpcRemoteError(RpcError):
    """The handler raised on the remote side."""

    def __init__(self, error_type: str, message: str):
        super().__init__(f"{error_type}: {message}")
        self.error_type = error_type
        self.remote_message = message


class _HandlerRegistry:
    """Shared method table for both transports."""

    def __init__(self):
        self._handlers: dict[str, Callable] = {}

    def register(self, method: str, handler: Callable) -> None:
        """Register a generator function under *method*."""
        if method in self._handlers:
            raise ValueError(f"handler {method!r} already registered")
        self._handlers[method] = handler

    def dispatch(self, request: RpcRequest):
        """Run the handler (generator); returns an RpcResponse."""
        handler = self._handlers.get(request.method)
        if handler is None:
            return RpcResponse(
                call_id=request.call_id,
                error=f"no such method {request.method!r}",
                error_type="LookupError",
            )
        try:
            result = yield from handler(*request.args)
        except Exception as exc:  # noqa: BLE001 - faithfully forwarded
            return RpcResponse(
                call_id=request.call_id,
                error=str(exc),
                error_type=type(exc).__name__,
            )
        return RpcResponse(call_id=request.call_id, result=result)


# ---------------------------------------------------------------------------
# RDMA transport
# ---------------------------------------------------------------------------


class RpcServer(_HandlerRegistry):
    """RPC service over RDMA SEND/RECV (the control-plane transport)."""

    def __init__(self, sim: Simulator, nic: RNic, cm: ConnectionManager,
                 service_id: str, msg_size: int = 64 * KiB):
        super().__init__()
        self.sim = sim
        self.nic = nic
        self.cm = cm
        self.service_id = service_id
        self.msg_size = msg_size
        self.requests_served = 0
        #: every accepted connection, so :meth:`stop` can tear them down
        self._accepted: list[RdmaMsgChannel] = []
        self._stopped = False
        #: optional fault-injection hook: ``hook(service_id, method) ->
        #: str``; a non-empty string fails the call with that message
        self.fault_hook: Optional[Callable[[str, str], str]] = None

    def start(self):
        """Begin listening (generator)."""
        pd = yield from self.nic.alloc_pd()
        # Listener-level CQs are placeholders; each accepted connection
        # gets dedicated CQs so its dispatcher can wait undisturbed.
        cq = yield from self.nic.create_cq()
        self.cm.listen(
            self.nic,
            self.service_id,
            pd,
            cq,
            # a generator: the CM completes it before acknowledging REP
            on_connect=self._accept,
        )
        return self

    def stop(self, reason: str = "server stopped") -> None:
        """Tear the service down (fail-stop).

        Stops listening and errors both ends of every accepted QP: the
        local flush ends our ``_serve`` loops, and the remote flush
        fails every peer's pending recv so its dispatcher observes
        channel death instead of waiting forever.
        """
        if self._stopped:
            return
        self._stopped = True
        self.cm.stop_listening(self.nic, self.service_id)
        for channel in self._accepted:
            channel.close()
            channel.qp.set_error(reason)
            if channel.qp.remote is not None:
                channel.qp.remote.set_error(reason)
        self._accepted.clear()

    def _accept(self, qp: QueuePair):
        qp.send_cq = yield from self.nic.create_cq()
        qp.recv_cq = yield from self.nic.create_cq()
        channel = RdmaMsgChannel(self.nic, qp, msg_size=self.msg_size)
        yield from channel.prepare()
        self._accepted.append(channel)
        self.sim.process(
            self._serve(channel), name=f"rpc-serve-{self.service_id}"
        )

    def _serve(self, channel: RdmaMsgChannel):
        while True:
            try:
                request = yield from channel.recv()
            except ChannelClosed:
                return
            self.sim.process(self._handle(channel, request))

    def _handle(self, channel: RdmaMsgChannel, request: RpcRequest):
        yield from self.nic.host.cpu.run(DISPATCH_CPU_S)
        detail = ""
        if self.fault_hook is not None:
            detail = self.fault_hook(self.service_id, request.method)
        if detail:
            # injected transient failure: the handler never runs, the
            # caller sees a remote RStoreError and is expected to retry
            response = RpcResponse(
                call_id=request.call_id,
                error=detail,
                error_type="RStoreError",
            )
        else:
            response = yield from self.dispatch(request)
        self.requests_served += 1
        try:
            yield from channel.send(response, wire_size=response.wire_size)
        except ChannelClosed:
            pass  # client died mid-call; nothing to deliver the reply to


class RpcClient:
    """Client half of :class:`RpcServer`."""

    def __init__(self, sim: Simulator, nic: RNic, cm: ConnectionManager):
        self.sim = sim
        self.nic = nic
        self.cm = cm
        self._channel: Optional[RdmaMsgChannel] = None
        self._pending: dict[int, Event] = {}
        self._call_ids = itertools.count(1)
        self.calls_made = 0

    def connect(self, remote_host_id: int, service_id: str,
                msg_size: int = 64 * KiB):
        """Establish the connection (generator)."""
        self._channel = yield from RdmaMsgChannel.connect(
            self.cm, self.nic, remote_host_id, service_id, msg_size=msg_size
        )
        self.sim.process(self._dispatch_responses(), name="rpc-client-dispatch")
        return self

    @property
    def connected(self) -> bool:
        return self._channel is not None and not self._channel.closed

    def abort(self, reason: str = "client aborted") -> None:
        """Tear the connection down without a goodbye (fail-stop).

        Errors both QP ends so the peer's ``_serve`` loop sees channel
        death, and our own dispatcher fails every pending call.
        """
        if self._channel is None:
            return
        self._channel.close()
        self._channel.qp.set_error(reason)
        if self._channel.qp.remote is not None:
            self._channel.qp.remote.set_error(reason)

    def _dispatch_responses(self):
        assert self._channel is not None
        while True:
            try:
                response = yield from self._channel.recv()
            except ChannelClosed as exc:
                for future in self._pending.values():
                    if not future.triggered:
                        # the owner may never claim this failure: under a
                        # partition it can still be parked inside send()
                        # when the peer dies, and learns of the death from
                        # send itself — defuse so the orphaned failure
                        # cannot crash the kernel
                        future.defused = True
                        future.fail(RpcError(str(exc)))
                self._pending.clear()
                return
            future = self._pending.pop(response.call_id, None)
            if future is not None and not future.triggered:
                future.succeed(response)

    def call(self, method: str, *args, wire_size: Optional[int] = None,
             timeout: Optional[float] = None):
        """Invoke a remote method (generator); returns its result."""
        if self._channel is None:
            raise RpcError("client is not connected")
        call_id = next(self._call_ids)
        request = RpcRequest(call_id=call_id, method=method, args=args,
                             wire_size=wire_size)
        future = self.sim.event()
        self._pending[call_id] = future
        self.calls_made += 1
        try:
            yield from self._channel.send(request, wire_size=wire_size)
        except ChannelClosed as exc:
            # Nobody will ever wait on the future; drop it before the
            # dispatcher fails it into the void.
            self._pending.pop(call_id, None)
            raise RpcError("connection lost while sending the request") from exc
        if timeout is None:
            response = yield future
        else:
            deadline = self.sim.timeout(timeout)
            yield self.sim.any_of([future, deadline])
            if not future.processed:
                self._pending.pop(call_id, None)
                raise RpcTimeout(f"{method} did not complete in {timeout}s")
            response = future.value
        if response.error is not None:
            raise RpcRemoteError(response.error_type, response.error)
        return response.result


# ---------------------------------------------------------------------------
# TCP transport (for the sockets baselines)
# ---------------------------------------------------------------------------


class TcpRpcServer(_HandlerRegistry):
    """The same RPC service over the sockets model."""

    def __init__(self, sim: Simulator, stack, port: int):
        super().__init__()
        self.sim = sim
        self.stack = stack
        self.port = port
        self.requests_served = 0

    def start(self):
        listener = self.stack.listen(self.port)
        self.sim.process(self._accept_loop(listener), name="tcp-rpc-accept")
        return self

    def _accept_loop(self, listener):
        while True:
            sock = yield from listener.accept()
            self.sim.process(self._serve(sock), name="tcp-rpc-serve")

    def _serve(self, sock):
        while True:
            request = yield from sock.recv()
            if request is None:
                return
            self.sim.process(self._handle(sock, request))

    def _handle(self, sock, request: RpcRequest):
        yield from self.stack.host.cpu.run(DISPATCH_CPU_S)
        response = yield from self.dispatch(request)
        self.requests_served += 1
        yield from sock.send(response, wire_size=response.wire_size)


class TcpRpcClient:
    """Client half of :class:`TcpRpcServer`."""

    def __init__(self, sim: Simulator, stack):
        self.sim = sim
        self.stack = stack
        self._sock = None
        self._pending: dict[int, Event] = {}
        self._call_ids = itertools.count(1)

    def connect(self, remote_stack, port: int):
        """Open the connection (generator)."""
        self._sock = yield from self.stack.connect(remote_stack, port)
        self.sim.process(self._dispatch_responses(), name="tcp-rpc-dispatch")
        return self

    def _dispatch_responses(self):
        while True:
            response = yield from self._sock.recv()
            if response is None:
                for future in self._pending.values():
                    if not future.triggered:
                        future.fail(RpcError("connection closed"))
                self._pending.clear()
                return
            future = self._pending.pop(response.call_id, None)
            if future is not None and not future.triggered:
                future.succeed(response)

    def call(self, method: str, *args, wire_size: Optional[int] = None):
        """Invoke a remote method (generator); returns its result."""
        if self._sock is None:
            raise RpcError("client is not connected")
        call_id = next(self._call_ids)
        future = self.sim.event()
        self._pending[call_id] = future
        yield from self._sock.send(
            RpcRequest(call_id=call_id, method=method, args=args,
                       wire_size=wire_size),
            wire_size=wire_size,
        )
        response = yield future
        if response.error is not None:
            raise RpcRemoteError(response.error_type, response.error)
        return response.result
