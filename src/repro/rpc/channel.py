"""A bidirectional message channel over one RDMA queue pair.

The channel pre-registers a send buffer and a ring of receive buffers
(the control path), then moves pickled messages with SEND/RECV (the
data path).  It is the substrate for RStore's control-plane RPC.
"""

from __future__ import annotations

import pickle
from typing import Optional

from repro.rdma.cm import ConnectionManager
from repro.rdma.nic import RNic
from repro.rdma.qp import QueuePair
from repro.rdma.types import Access, Opcode, QpError, RdmaError, WcStatus
from repro.rdma.wr import RecvWR, SendWR
from repro.simnet.config import KiB
from repro.simnet.resources import Resource

__all__ = ["RdmaMsgChannel", "ChannelClosed", "MessageTooLarge"]


class ChannelClosed(Exception):
    """The underlying QP failed (peer death or fatal transport error)."""


class MessageTooLarge(ValueError):
    """Message exceeds the channel's buffer size."""


class RdmaMsgChannel:
    """Message framing over a connected QP.

    One process per side may call :meth:`recv` (the dispatcher); any
    number of processes may :meth:`send` (serialized by a lock).
    """

    def __init__(self, nic: RNic, qp: QueuePair, msg_size: int = 64 * KiB,
                 credits: int = 32):
        self.nic = nic
        self.qp = qp
        self.msg_size = msg_size
        self.credits = credits
        self._send_lock = Resource(nic.sim, capacity=1)
        self._send_mr = None
        self._recv_mr = None
        self.closed = False

    # -- construction --------------------------------------------------------

    def prepare(self):
        """Register buffers and post the receive ring (generator)."""
        pd = self.qp.pd
        self._send_mr = yield from self.nic.reg_mr(pd, length=self.msg_size)
        self._recv_mr = yield from self.nic.reg_mr(
            pd, length=self.msg_size * self.credits
        )
        for i in range(self.credits):
            self._post_recv_slot(i)
        return self

    @classmethod
    def connect(
        cls,
        cm: ConnectionManager,
        nic: RNic,
        remote_host_id: int,
        service_id: str,
        msg_size: int = 64 * KiB,
        credits: int = 32,
    ):
        """Full client-side setup (generator): PD, CQs, connect, buffers."""
        pd = yield from nic.alloc_pd()
        send_cq = yield from nic.create_cq()
        recv_cq = yield from nic.create_cq()
        qp = yield from cm.connect(
            nic, remote_host_id, service_id, pd, send_cq, recv_cq
        )
        channel = cls(nic, qp, msg_size=msg_size, credits=credits)
        yield from channel.prepare()
        return channel

    def _post_recv_slot(self, index: int) -> None:
        self.qp.post_recv(
            RecvWR(
                local_mr=self._recv_mr,
                local_addr=self._recv_mr.addr + index * self.msg_size,
                length=self.msg_size,
                wr_id=index,
            )
        )

    # -- messaging -------------------------------------------------------------

    def send(self, obj, wire_size: Optional[int] = None):
        """Send one message (generator); returns the payload size."""
        if self.closed:
            raise ChannelClosed("channel is closed")
        payload = pickle.dumps(obj)
        if len(payload) > self.msg_size:
            raise MessageTooLarge(
                f"message of {len(payload)} bytes exceeds channel buffer "
                f"of {self.msg_size}"
            )
        req = self._send_lock.request()
        yield req
        try:
            # Application-side marshalling into the registered buffer.
            yield from self.nic.host.cpu.copy(len(payload))
            self._send_mr.buffer.write(0, payload)
            try:
                self.qp.post_send(
                    SendWR(
                        opcode=Opcode.SEND,
                        local_mr=self._send_mr,
                        local_addr=self._send_mr.addr,
                        length=len(payload),
                        wire_length=wire_size,
                    )
                )
            except QpError as exc:
                # the QP died under us (peer crash tore it down) before
                # the dispatcher could observe the flush
                self.closed = True
                raise ChannelClosed(str(exc)) from exc
            wc = yield self.qp.send_cq.next_completion()
            if not wc.ok:
                self.closed = True
                raise ChannelClosed(f"send failed: {wc.status.value} {wc.detail}")
        finally:
            self._send_lock.release(req)
        return len(payload)

    def recv(self):
        """Wait for the next inbound message (generator)."""
        if self.closed:
            raise ChannelClosed("channel is closed")
        wc = yield self.qp.recv_cq.next_completion()
        if not wc.ok:
            self.closed = True
            raise ChannelClosed(f"recv failed: {wc.status.value} {wc.detail}")
        index = wc.wr_id
        offset = index * self.msg_size
        payload = self._recv_mr.buffer.read(offset, wc.byte_len)
        obj = pickle.loads(payload)
        # Receive-side unmarshalling cost.
        yield from self.nic.host.cpu.copy(wc.byte_len)
        self._post_recv_slot(index)
        return obj

    def close(self) -> None:
        self.closed = True
