"""Request/response messaging over RDMA SEND/RECV or sockets.

RStore's control path (client ↔ master, master ↔ memory servers) is
RPC over RDMA two-sided messaging; the comparison baselines use the
same RPC layer over the TCP model.  Handlers are generator functions
running on the server's host, so any CPU or IO they charge lands on the
right machine.
"""

from repro.rpc.endpoint import (
    RpcClient,
    RpcError,
    RpcRemoteError,
    RpcServer,
    TcpRpcClient,
    TcpRpcServer,
)

__all__ = [
    "RpcClient",
    "RpcError",
    "RpcRemoteError",
    "RpcServer",
    "TcpRpcClient",
    "TcpRpcServer",
]
