"""Protection domains: the verbs grouping of MRs and QPs.

A QP may only use memory regions registered in its own PD; crossing PDs
is a protection error.  RStore uses one PD per service endpoint.
"""

from __future__ import annotations

import itertools

__all__ = ["ProtectionDomain", "reset_pd_counter"]

_pd_counter = itertools.count(1)


def reset_pd_counter() -> None:
    """Restart PD handle handout (fresh-simulation reproducibility)."""
    global _pd_counter
    _pd_counter = itertools.count(1)


class ProtectionDomain:
    """Groups memory regions and queue pairs on one device."""

    def __init__(self, nic):
        self.nic = nic
        self.handle = next(_pd_counter)
        self.regions: list = []
        self.qps: list = []

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<PD {self.handle} on {self.nic.host.name}>"
