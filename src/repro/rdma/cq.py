"""Completion queues.

Completions arrive as :class:`WorkCompletion` entries.  Consumers can
poll non-blockingly (``poll``) like a spinning verbs application, or
wait event-driven (``next_completion`` / ``wait_for``) like an app using
a completion channel.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Any, Optional

from repro.rdma.types import Opcode, WcStatus
from repro.simnet.kernel import Event, Simulator

__all__ = ["WorkCompletion", "CompletionQueue"]


@dataclass
class WorkCompletion:
    """One completed work request."""

    wr_id: Any
    status: WcStatus
    opcode: Opcode
    byte_len: int = 0
    qp: Optional[object] = None
    #: atomics: the prior value at the remote address
    atomic_result: Optional[int] = None
    #: immediate data from RDMA_WRITE_IMM / SEND-with-imm
    imm_data: Optional[int] = None
    #: error detail for non-SUCCESS completions
    detail: str = ""

    @property
    def ok(self) -> bool:
        return self.status is WcStatus.SUCCESS


class CompletionQueue:
    """FIFO of work completions with event-driven waiting."""

    def __init__(self, sim: Simulator, depth: int = 4096):
        self.sim = sim
        self.depth = depth
        self._entries: deque[WorkCompletion] = deque()
        self._waiters: deque[Event] = deque()
        #: total completions ever pushed (for metrics/tests)
        self.total_completions = 0
        self.overflowed = False
        #: completions dropped by CQ overrun
        self.dropped = 0

    def __len__(self) -> int:
        return len(self._entries)

    def push(self, wc: WorkCompletion) -> None:
        """Deliver a completion (called by the NIC at completion time)."""
        self.total_completions += 1
        if self._waiters:
            self._waiters.popleft().succeed(wc)
            return
        if len(self._entries) >= self.depth:
            # CQ overrun.  Real RNICs raise a fatal async event and the
            # QP goes to error; mirroring that keeps ``depth`` honest
            # instead of letting deep batches grow the queue unbounded.
            self.overflowed = True
            self.dropped += 1
            if wc.qp is not None:
                wc.qp.set_error(f"CQ overrun (depth {self.depth})")
            return
        self._entries.append(wc)

    def poll(self, max_entries: int = 16) -> list[WorkCompletion]:
        """Non-blocking poll, like ``ibv_poll_cq``."""
        out = []
        while self._entries and len(out) < max_entries:
            out.append(self._entries.popleft())
        return out

    def next_completion(self) -> Event:
        """An event that fires with the next completion."""
        event = Event(self.sim)
        if self._entries:
            event.succeed(self._entries.popleft())
        else:
            self._waiters.append(event)
        return event

    def wait_for(self, n: int = 1):
        """Generator: wait until *n* completions arrive; returns them."""
        out = []
        while len(out) < n:
            wc = yield self.next_completion()
            out.append(wc)
        return out
