"""Reliable-connected queue pairs.

The model collapses the verbs state machine (INIT/RTR/RTS) into a single
``CONNECTED`` state entered through the connection manager; the paper's
systems only ever use RC QPs, fully connected before use.

Ordering follows RC semantics: work requests on one QP execute and
complete in post order; an error transitions the QP to ``ERROR`` and
flushes everything still queued.
"""

from __future__ import annotations

import itertools
from collections import deque
from typing import Optional

from repro.rdma.cq import CompletionQueue, WorkCompletion
from repro.rdma.types import Opcode, QpError, QpState, RdmaError, WcStatus
from repro.rdma.wr import RecvWR, SendWR

__all__ = ["QueuePair", "reset_qpn_counter"]

_qpn_counter = itertools.count(100)


def reset_qpn_counter() -> None:
    """Restart QP number handout (fresh-simulation reproducibility)."""
    global _qpn_counter
    _qpn_counter = itertools.count(100)


class QueuePair:
    """One end of a reliable connection."""

    def __init__(
        self,
        nic,
        pd,
        send_cq: CompletionQueue,
        recv_cq: CompletionQueue,
        sq_depth: int = 128,
        rq_depth: int = 1024,
    ):
        self.nic = nic
        self.pd = pd
        self.send_cq = send_cq
        self.recv_cq = recv_cq
        self.sq_depth = sq_depth
        self.rq_depth = rq_depth
        self.qp_num = next(_qpn_counter)
        self.state = QpState.RESET
        self.remote: Optional["QueuePair"] = None
        self.error_reason = ""
        self._rq: deque[RecvWR] = deque()
        #: SEND payloads that arrived before a receive was posted
        self._unmatched: deque[tuple] = deque()
        self._inflight = 0
        #: send WRs in post order, awaiting in-order completion delivery
        self._order: deque[SendWR] = deque()
        pd.qps.append(self)

    # -- connection management (driven by the CM) ---------------------------

    def _connect_to(self, remote: "QueuePair") -> None:
        self.remote = remote
        self.state = QpState.CONNECTED

    # -- posting -------------------------------------------------------------

    def post_send(self, wr: SendWR) -> None:
        """Queue a work request on the send queue.

        Raises synchronously for caller bugs (bad WR, wrong state, full
        SQ); transport/remote failures surface asynchronously as error
        completions, exactly like the verbs contract.
        """
        if self.state is QpState.ERROR:
            raise QpError(f"QP {self.qp_num} is in error state: {self.error_reason}")
        if self.state is not QpState.CONNECTED:
            raise RdmaError(f"QP {self.qp_num} is not connected")
        if self._inflight >= self.sq_depth:
            raise RdmaError(
                f"send queue full ({self.sq_depth} in flight); poll the CQ"
            )
        wr.validate()
        if wr.local_mr is not None and wr.local_mr.pd is not self.pd:
            raise RdmaError("local MR belongs to a different protection domain")
        self._inflight += 1
        wr._wc = None
        self._order.append(wr)
        self.nic.submit(self, wr)

    def post_send_many(self, wrs: list[SendWR]) -> None:
        """Post a list of work requests with a single doorbell.

        The whole list is admitted or rejected atomically: state and
        send-queue space are checked for the full batch before any WR
        is accepted, so a raise here means nothing reached the NIC.
        The NIC charges one doorbell for the list and then processes
        WQEs back to back — the verbs doorbell-batching idiom.
        """
        if not wrs:
            return
        if self.state is QpState.ERROR:
            raise QpError(f"QP {self.qp_num} is in error state: {self.error_reason}")
        if self.state is not QpState.CONNECTED:
            raise RdmaError(f"QP {self.qp_num} is not connected")
        if self._inflight + len(wrs) > self.sq_depth:
            raise RdmaError(
                f"send queue cannot admit {len(wrs)} work requests "
                f"({self._inflight} of {self.sq_depth} in flight); poll the CQ"
            )
        for wr in wrs:
            wr.validate()
            if wr.local_mr is not None and wr.local_mr.pd is not self.pd:
                raise RdmaError(
                    "local MR belongs to a different protection domain"
                )
        self._inflight += len(wrs)
        for wr in wrs:
            wr._wc = None
            self._order.append(wr)
        self.nic.submit_many(self, wrs)

    def post_recv(self, wr: RecvWR) -> None:
        if self.state is QpState.ERROR:
            raise QpError(f"QP {self.qp_num} is in error state: {self.error_reason}")
        if len(self._rq) >= self.rq_depth:
            raise RdmaError(f"receive queue full ({self.rq_depth})")
        if wr.local_mr.pd is not self.pd:
            raise RdmaError("recv MR belongs to a different protection domain")
        self._rq.append(wr)
        if self._unmatched:
            arrival = self._unmatched.popleft()
            self.nic._match_recv(self, self._rq.popleft(), *arrival)

    # -- bookkeeping used by the NIC ------------------------------------------

    @property
    def inflight(self) -> int:
        return self._inflight

    @property
    def posted_recvs(self) -> int:
        return len(self._rq)

    def _take_recv(self) -> Optional[RecvWR]:
        return self._rq.popleft() if self._rq else None

    def _park_arrival(self, arrival: tuple) -> None:
        self._unmatched.append(arrival)

    def _complete_send(self, wr: SendWR, wc: WorkCompletion) -> None:
        """Record one finished WR and deliver completions in post order.

        RC completes work requests in post order even when the
        underlying operations finish out of order (reads of different
        sizes, a faulted WR timing out long after its successors).
        Each completion is held until every earlier WR on the queue
        has one, then delivered — the property that makes
        tail-signaled doorbell batches sound: a delivered tail success
        proves everything posted before it succeeded too.
        """
        wr._wc = wc
        order = self._order
        while order and order[0]._wc is not None:
            head = order.popleft()
            done = head._wc
            self._inflight -= 1
            if head.signaled or not done.ok:
                self.send_cq.push(done)
            if not done.ok:
                self.set_error(done.detail or done.status.value)

    def set_error(self, reason: str) -> None:
        """Transition to ERROR and flush queued receives."""
        if self.state is QpState.ERROR:
            return
        self.state = QpState.ERROR
        self.error_reason = reason
        while self._rq:
            flushed = self._rq.popleft()
            self.recv_cq.push(
                WorkCompletion(
                    wr_id=flushed.wr_id,
                    status=WcStatus.WR_FLUSH_ERR,
                    opcode=Opcode.RECV,
                    qp=self,
                    detail=reason,
                )
            )

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"<QP {self.qp_num} on {self.nic.host.name} "
            f"{self.state.value}>"
        )
