"""NIC cost model.

Constants are calibrated to published ConnectX-3 / FDR measurements so
that a small one-sided READ lands in the ~2 µs range the paper calls
"close-to-hardware", and so that control-path operations (registration,
QP creation, connect) are two to four orders of magnitude slower than a
data-path operation — the asymmetry RStore's separation philosophy
exploits.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.simnet.config import us

__all__ = ["NicModel", "PAGE_SIZE"]

PAGE_SIZE = 4096


@dataclass
class NicModel:
    """Timing parameters of one RDMA NIC."""

    # -- data path ---------------------------------------------------------
    #: posting a WQE: doorbell write + WQE fetch by the NIC (s)
    doorbell_s: float = us(0.20)
    #: NIC processing per work request (address translation, DMA setup);
    #: bounds the small-message rate at ~1/wqe_processing (s)
    wqe_processing_s: float = us(0.25)
    #: target-side NIC handling of an inbound one-sided request (s)
    remote_dma_s: float = us(0.30)
    #: raising a completion + CQE write back to host memory (s)
    completion_s: float = us(0.30)
    #: extra latency of an atomic (PCIe round trip + lock) at the target (s)
    atomic_extra_s: float = us(0.50)
    #: per-frame wire overhead: IB LRH/BTH/ICRC etc. (bytes)
    frame_header_bytes: int = 64
    #: size of a READ request / ACK control message on the wire (bytes)
    control_message_bytes: int = 32
    #: payload at or below this size is inlined into the WQE — the send
    #: skips the DMA fetch, shaving latency (bytes)
    max_inline: int = 256
    #: latency saved by inlining (s)
    inline_saving_s: float = us(0.15)

    # -- control path --------------------------------------------------------
    #: fixed cost of registering a memory region (syscall, pinning setup) (s)
    reg_mr_base_s: float = us(30.0)
    #: per-page cost of registration (pin + IOMMU map) (s)
    reg_mr_per_page_s: float = us(0.35)
    #: creating a queue pair (s)
    create_qp_s: float = us(80.0)
    #: creating a completion queue (s)
    create_cq_s: float = us(25.0)
    #: allocating a protection domain (s)
    alloc_pd_s: float = us(10.0)
    #: CM address/route resolution + transition INIT->RTR->RTS, charged on
    #: top of the 1.5 RTT handshake (s)
    cm_setup_s: float = us(120.0)

    # -- failure handling ----------------------------------------------------
    #: transport retry budget before a send completes with RETRY_EXC_ERR (s)
    retry_timeout_s: float = 0.5
