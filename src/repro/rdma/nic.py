"""The RDMA NIC: control-path verbs and the offloaded data path.

Control-path methods (``alloc_pd``, ``reg_mr``, ``create_qp``, …) are
generators that charge realistic setup latencies — this is the "resource
setup" half of RDMA's separation philosophy.

The data path is fully offloaded: once a work request is posted, the
NIC engine model (an analytic busy-time chain, like a link channel)
processes WQEs in order, moves frames across the fabric, executes
one-sided operations against the *remote NIC's* memory table without
ever touching the remote CPU model, and raises completions.
"""

from __future__ import annotations

from typing import Callable, Optional

from repro.obs import obs_for
from repro.rdma.cq import CompletionQueue, WorkCompletion
from repro.rdma.device import NicModel
from repro.rdma.memory import Buffer, HostMemory, MemoryRegion
from repro.rdma.pd import ProtectionDomain
from repro.rdma.qp import QueuePair
from repro.rdma.types import Access, Opcode, QpState, RdmaError, WcStatus
from repro.rdma.wr import RecvWR, SendWR
from repro.sanitize import rsan_for
from repro.simnet.kernel import Simulator
from repro.simnet.topology import Host, Network

__all__ = ["RNic"]


class RNic:
    """One host's RDMA NIC."""

    def __init__(
        self,
        sim: Simulator,
        host: Host,
        network: Network,
        model: Optional[NicModel] = None,
    ):
        self.sim = sim
        self.host = host
        self.network = network
        self.model = model or NicModel()
        self.memory = HostMemory(host.host_id)
        self.alive = True
        #: epoch fence: one-sided WRs stamped with an epoch below this
        #: are NAK'd ("stale epoch") instead of touching memory — set by
        #: the memory server when it re-registers with a recycled arena.
        #: Epochs are per control-plane shard (shards recover
        #: independently); this attribute is shard 0's fence and
        #: ``_shard_fences`` carries the rest — WRs say which fence
        #: applies via their ``shard`` stamp.
        self.fence_epoch = 0
        self._shard_fences: dict[int, int] = {}
        #: optional fault-injection hook: ``hook(host_id, wr) -> str``
        #: returning a non-empty detail fails the WR with RETRY_EXC_ERR
        #: *before* it leaves this NIC (the remote side never sees it)
        self.fault_hook: Optional[Callable[[int, SendWR], str]] = None
        #: like ``fault_hook`` but consulted when a *successful*
        #: completion is about to be raised: the remote side already
        #: applied the op, only the acknowledgement is lost.  This is
        #: the ambiguity that makes atomics non-replayable.
        self.ack_fault_hook: Optional[Callable[[int, SendWR], str]] = None
        self._engine_busy_until = 0.0
        #: rkey -> MemoryRegion, the NIC's translation/permission table
        self.mr_by_rkey: dict[int, MemoryRegion] = {}
        # -- observability: registry instruments labelled by host; the
        # legacy attribute names live on as read-only properties
        self.obs = obs_for(sim)
        self.rsan = rsan_for(sim)
        _m = self.obs.metrics
        _host = host.host_id
        self._m_ops_posted = _m.counter("rnic.ops_posted", host=_host)
        self._m_ops_completed = _m.counter("rnic.ops_completed", host=_host)
        self._m_bytes_sent = _m.counter("rnic.bytes_sent", host=_host)
        self._m_doorbells = _m.counter("rnic.doorbells_rung", host=_host)
        host.services["rnic"] = self

    # -- epoch fencing --------------------------------------------------------

    def set_fence(self, shard_id: int, epoch: int) -> None:
        """Fence one shard's era: one-sided WRs carrying that shard's
        stamp with an older epoch NAK instead of touching memory."""
        if shard_id == 0:
            self.fence_epoch = epoch
        else:
            self._shard_fences[shard_id] = epoch

    def fence_for(self, shard_id: int) -> int:
        return (self.fence_epoch if shard_id == 0
                else self._shard_fences.get(shard_id, 0))

    def fenced(self, shard_id: int, epoch: int) -> bool:
        """Would a request stamped (*shard_id*, *epoch*) be NAK'd stale?

        The same test the WR path applies, exposed for the server-op
        executor so composite RPC-borne ops honour the identical fence.
        """
        return epoch < self.fence_for(shard_id)

    # -- metrics (registry-backed; see repro.obs) -----------------------------

    @property
    def ops_posted(self) -> int:
        """Work requests accepted by this NIC's engine."""
        return self._m_ops_posted.value

    @property
    def ops_completed(self) -> int:
        """Completions this NIC has raised (success or error)."""
        return self._m_ops_completed.value

    @property
    def bytes_sent(self) -> int:
        return self._m_bytes_sent.value

    @property
    def doorbells_rung(self) -> int:
        """One per ``submit`` call and one per ``submit_many`` *list* —
        ``doorbells_rung < ops_posted`` is the proof that doorbell
        batching is happening."""
        return self._m_doorbells.value

    # ------------------------------------------------------------------
    # control path (generators charging setup time)
    # ------------------------------------------------------------------

    def alloc_pd(self):
        """Allocate a protection domain (generator)."""
        span = self.obs.tracer.span("control.nic.alloc_pd", kind="control",
                                    host=self.host.host_id)
        yield self.sim.timeout(self.model.alloc_pd_s)
        span.finish()
        return ProtectionDomain(self)

    def create_cq(self, depth: int = 4096):
        """Create a completion queue (generator)."""
        span = self.obs.tracer.span("control.nic.create_cq", kind="control",
                                    host=self.host.host_id)
        yield self.sim.timeout(self.model.create_cq_s)
        span.finish()
        return CompletionQueue(self.sim, depth)

    def reg_mr(
        self,
        pd: ProtectionDomain,
        length: Optional[int] = None,
        buffer: Optional[Buffer] = None,
        access: Access = Access.LOCAL_WRITE,
    ):
        """Register a memory region (generator).

        Either pass an existing ``buffer`` or a ``length`` to allocate a
        fresh one.  Registration cost grows with the page count — the
        dominant control-path cost the paper's design amortises by
        registering at allocation/mapping time, never per IO.
        """
        if pd.nic is not self:
            raise RdmaError("PD belongs to a different device")
        if buffer is None:
            if length is None:
                raise RdmaError("reg_mr needs a buffer or a length")
            buffer = self.memory.alloc(length)
        elif buffer.host_id != self.host.host_id:
            raise RdmaError("cannot register another host's memory")
        mr = MemoryRegion(buffer, access, pd=pd)
        span = self.obs.tracer.span("control.nic.reg_mr", kind="control",
                                    host=self.host.host_id, pages=mr.pages)
        cost = self.model.reg_mr_base_s + mr.pages * self.model.reg_mr_per_page_s
        yield self.sim.timeout(cost)
        span.finish()
        self.mr_by_rkey[mr.rkey] = mr
        pd.regions.append(mr)
        return mr

    def dereg_mr(self, mr: MemoryRegion):
        """Deregister (unpin) a memory region (generator)."""
        mr.deregister()
        self.mr_by_rkey.pop(mr.rkey, None)
        yield self.sim.timeout(self.model.reg_mr_base_s / 2)

    def create_qp(
        self,
        pd: ProtectionDomain,
        send_cq: CompletionQueue,
        recv_cq: Optional[CompletionQueue] = None,
        sq_depth: int = 128,
        rq_depth: int = 1024,
    ):
        """Create an RC queue pair (generator)."""
        if pd.nic is not self:
            raise RdmaError("PD belongs to a different device")
        span = self.obs.tracer.span("control.nic.create_qp", kind="control",
                                    host=self.host.host_id)
        yield self.sim.timeout(self.model.create_qp_s)
        span.finish()
        # NB: "recv_cq or send_cq" would be wrong here — an empty
        # CompletionQueue is falsy (it has __len__).
        return QueuePair(
            self,
            pd,
            send_cq,
            send_cq if recv_cq is None else recv_cq,
            sq_depth=sq_depth,
            rq_depth=rq_depth,
        )

    # ------------------------------------------------------------------
    # data path (event-driven, no generators: the NIC is offloaded)
    # ------------------------------------------------------------------

    def submit(self, qp: QueuePair, wr: SendWR) -> None:
        """Accept a posted WQE; called by :meth:`QueuePair.post_send`."""
        self._m_ops_posted.inc()
        self._m_doorbells.inc()
        wr._wc_raised = False
        if self.obs.tracer.enabled:
            wr._obs_posted = self.sim.now
        if self.rsan.enabled:
            self.rsan.on_post(wr, self.host.host_id)
        model = self.model
        earliest = self.sim.now + model.doorbell_s
        processing = model.wqe_processing_s
        if wr.inline_data is not None and len(wr.inline_data) <= model.max_inline:
            processing = max(0.0, processing - model.inline_saving_s)
        start = max(earliest, self._engine_busy_until)
        self._engine_busy_until = start + processing
        self._after(
            self._engine_busy_until - self.sim.now, lambda: self._launch(qp, wr)
        )

    def submit_many(self, qp: QueuePair, wrs: list[SendWR]) -> None:
        """Accept a doorbell batch; called by ``post_send_many``.

        The MMIO doorbell is paid once for the whole list; the engine
        then processes the WQEs back to back, so per-op cost collapses
        to ``wqe_processing_s`` — the mechanism behind the batched
        small-op throughput numbers (E13).
        """
        self._m_ops_posted.inc(len(wrs))
        self._m_doorbells.inc()
        for wr in wrs:
            wr._wc_raised = False
        if self.obs.tracer.enabled:
            for wr in wrs:
                wr._obs_posted = self.sim.now
        if self.rsan.enabled:
            for wr in wrs:
                self.rsan.on_post(wr, self.host.host_id)
        model = self.model
        earliest = self.sim.now + model.doorbell_s
        start = max(earliest, self._engine_busy_until)
        for wr in wrs:
            processing = model.wqe_processing_s
            if (wr.inline_data is not None
                    and len(wr.inline_data) <= model.max_inline):
                processing = max(0.0, processing - model.inline_saving_s)
            start += processing
            self._after(
                start - self.sim.now,
                lambda qp=qp, wr=wr: self._launch(qp, wr),
            )
        self._engine_busy_until = start

    def kill(self) -> None:
        """Simulate host failure: the NIC stops responding entirely."""
        self.alive = False

    # -- internal helpers ----------------------------------------------------

    def _after(self, delay: float, fn: Callable[[], None]) -> None:
        self.sim.timeout(delay).add_callback(lambda _e: fn())

    def _launch(self, qp: QueuePair, wr: SendWR) -> None:
        if not self.alive:
            return  # a dead host sends nothing and nobody is listening
        tracer = self.obs.tracer
        if tracer.enabled:
            posted = getattr(wr, "_obs_posted", None)
            if posted is not None:
                tracer.record("data.qp.post", posted,
                              host=self.host.host_id, op=wr.opcode.name)
            wr._obs_launched = self.sim.now
        if self.fault_hook is not None:
            detail = self.fault_hook(self.host.host_id, wr)
            if detail:
                # injected wire fault: the op times out and errors the QP,
                # exactly like losing the peer mid-flight
                self._after(
                    self.model.retry_timeout_s,
                    lambda: self._complete(
                        qp, wr, WcStatus.RETRY_EXC_ERR, detail=detail
                    ),
                )
                return
        if self.network.fault_filter is not None:
            # partitions are armed: any leg of this op (request, remote
            # ack, read response) may silently vanish in the fabric, so
            # model the RC transport retry timer — if no completion has
            # been raised by then, the op fails with RETRY_EXC_ERR.
            # First completion wins (see the guard in ``_complete``).
            self._after(
                self.model.retry_timeout_s,
                lambda: self._complete(
                    qp, wr, WcStatus.RETRY_EXC_ERR,
                    detail="transport retries exhausted (partitioned?)",
                ),
            )
        remote_qp = qp.remote
        assert remote_qp is not None, "connected QP lost its peer"
        opcode = wr.opcode
        if opcode in (Opcode.RDMA_WRITE, Opcode.RDMA_WRITE_IMM):
            self._launch_write(qp, wr, remote_qp)
        elif opcode is Opcode.RDMA_READ:
            self._launch_read(qp, wr, remote_qp)
        elif opcode in (Opcode.ATOMIC_CAS, Opcode.ATOMIC_FAA):
            self._launch_atomic(qp, wr, remote_qp)
        elif opcode is Opcode.SEND:
            self._launch_send(qp, wr, remote_qp)
        else:  # pragma: no cover - guarded by WR validation
            raise RdmaError(f"unsupported opcode {opcode}")

    def _snapshot_payload(self, wr: SendWR) -> bytes:
        """DMA-read the local payload at launch time (send-side snapshot)."""
        if wr.inline_data is not None:
            return bytes(wr.inline_data)
        if wr.length == 0 or wr.local_mr is None:
            return b""
        offset = wr.local_mr.offset_of(wr.local_addr)
        return wr.local_mr.buffer.read(offset, wr.length)

    def _transmit(self, dst: "RNic", nbytes: int, on_delivered: Callable[[], None]):
        self._m_bytes_sent.inc(nbytes)
        self.network.transmit_message(
            self.host,
            dst.host,
            nbytes,
            header_bytes=self.model.frame_header_bytes,
            on_delivered=on_delivered,
        )

    def _send_control(self, dst: "RNic", on_delivered: Callable[[], None]):
        self._transmit(dst, self.model.control_message_bytes, on_delivered)

    def _complete(
        self,
        qp: QueuePair,
        wr: SendWR,
        status: WcStatus,
        byte_len: int = 0,
        atomic_result: Optional[int] = None,
        detail: str = "",
    ) -> None:
        if getattr(wr, "_wc_raised", False):
            # the partition watchdog and the real outcome can both try
            # to complete one WR; whichever fires first is the truth
            return
        wr._wc_raised = True
        if status is WcStatus.SUCCESS and self.ack_fault_hook is not None:
            injected = self.ack_fault_hook(self.host.host_id, wr)
            if injected:
                # the op ran remotely; only its acknowledgement is lost
                status = WcStatus.RETRY_EXC_ERR
                byte_len = 0
                atomic_result = None
                detail = injected
        self._m_ops_completed.inc()
        tracer = self.obs.tracer
        if tracer.enabled:
            launched = getattr(wr, "_obs_launched", None)
            if launched is not None:
                tracer.record("data.nic.wire", launched,
                              host=self.host.host_id, op=wr.opcode.name,
                              status=status.value, nbytes=byte_len)
        wc = WorkCompletion(
            wr_id=wr.wr_id,
            status=status,
            opcode=wr.opcode,
            byte_len=byte_len,
            qp=qp,
            atomic_result=atomic_result,
            detail=detail,
        )
        if tracer.enabled:
            # consumed by the client dispatcher's data.cq.complete span
            wc._obs_raised = self.sim.now
        qp._complete_send(wr, wc)

    def _schedule_retry_failure(self, qp: QueuePair, wr: SendWR) -> None:
        """The peer is unreachable: complete with RETRY_EXC after timeout."""
        self._after(
            self.model.retry_timeout_s,
            lambda: self._complete(
                qp,
                wr,
                WcStatus.RETRY_EXC_ERR,
                detail="remote host unreachable",
            ),
        )

    def _remote_lookup(
        self, remote: "RNic", wr: SendWR, need: Access
    ) -> tuple[Optional[MemoryRegion], str]:
        epoch = getattr(wr, "epoch", None)
        if epoch is not None:
            fence = remote.fence_for(getattr(wr, "shard", 0))
            if epoch < fence:
                return None, (
                    f"stale epoch {epoch} fenced (server is at epoch "
                    f"{fence})"
                )
        mr = remote.mr_by_rkey.get(wr.rkey)
        if mr is None:
            return None, f"no memory region with rkey {wr.rkey}"
        err = mr.check_remote(wr.remote_addr, wr.length, need)
        if err:
            return None, err
        return mr, ""

    def _nak(self, qp: QueuePair, wr: SendWR, remote: "RNic", detail: str) -> None:
        """Remote-side rejection: error response after a round trip."""
        remote._send_control(
            self,
            lambda: self._after(
                self.model.completion_s,
                lambda: self._complete(
                    qp, wr, WcStatus.REM_ACCESS_ERR, detail=detail
                ),
            ),
        )

    # -- RDMA WRITE ------------------------------------------------------------

    def _launch_write(self, qp: QueuePair, wr: SendWR, remote_qp: QueuePair) -> None:
        remote = remote_qp.nic
        payload = self._snapshot_payload(wr)

        def on_data_arrival():
            if not remote.alive:
                self._schedule_retry_failure(qp, wr)
                return
            mr, err = self._remote_lookup(remote, wr, Access.REMOTE_WRITE)
            if mr is None:
                self._nak(qp, wr, remote, err)
                return

            def do_dma():
                mr.buffer.write(mr.offset_of(wr.remote_addr), payload)
                if remote.rsan.enabled:
                    remote.rsan.on_apply(remote.host.host_id, wr.remote_addr,
                                         wr.length, "write", wr)
                if wr.opcode is Opcode.RDMA_WRITE_IMM:
                    # the immediate consumes a receive WQE at the target
                    rwr = remote_qp._take_recv()
                    if rwr is None:
                        remote_qp._park_arrival(("imm", None, qp, wr))
                    else:
                        remote._match_recv(remote_qp, rwr, "imm", None,
                                           qp, wr)
                remote._send_control(
                    self,
                    lambda: self._after(
                        self.model.completion_s,
                        lambda: self._complete(
                            qp, wr, WcStatus.SUCCESS, byte_len=wr.length
                        ),
                    ),
                )

            self._after(remote.model.remote_dma_s, do_dma)

        self._transmit(remote, wr.bytes_on_wire, on_data_arrival)

    # -- RDMA READ -------------------------------------------------------------

    def _launch_read(self, qp: QueuePair, wr: SendWR, remote_qp: QueuePair) -> None:
        remote = remote_qp.nic

        def on_request_arrival():
            if not remote.alive:
                self._schedule_retry_failure(qp, wr)
                return
            mr, err = self._remote_lookup(remote, wr, Access.REMOTE_READ)
            if mr is None:
                self._nak(qp, wr, remote, err)
                return

            def do_dma():
                data = mr.buffer.read(mr.offset_of(wr.remote_addr), wr.length)
                if remote.rsan.enabled:
                    remote.rsan.on_apply(remote.host.host_id, wr.remote_addr,
                                         wr.length, "read", wr)

                def on_response_arrival():
                    if wr.local_mr is not None and wr.length:
                        wr.local_mr.buffer.write(
                            wr.local_mr.offset_of(wr.local_addr), data
                        )
                    self._after(
                        self.model.completion_s,
                        lambda: self._complete(
                            qp, wr, WcStatus.SUCCESS, byte_len=wr.length
                        ),
                    )

                remote._m_bytes_sent.inc(wr.bytes_on_wire)
                remote.network.transmit_message(
                    remote.host,
                    self.host,
                    wr.bytes_on_wire,
                    header_bytes=remote.model.frame_header_bytes,
                    on_delivered=on_response_arrival,
                )

            self._after(remote.model.remote_dma_s, do_dma)

        self._send_control(remote, on_request_arrival)

    # -- atomics -----------------------------------------------------------------

    def _launch_atomic(self, qp: QueuePair, wr: SendWR, remote_qp: QueuePair) -> None:
        remote = remote_qp.nic

        def on_request_arrival():
            if not remote.alive:
                self._schedule_retry_failure(qp, wr)
                return
            mr, err = self._remote_lookup(remote, wr, Access.REMOTE_ATOMIC)
            if mr is None:
                self._nak(qp, wr, remote, err)
                return
            if wr.remote_addr % 8 != 0:
                self._nak(qp, wr, remote, "atomic target not 8-byte aligned")
                return

            def do_atomic():
                offset = mr.offset_of(wr.remote_addr)
                old = int.from_bytes(mr.buffer.read(offset, 8), "little")
                if wr.opcode is Opcode.ATOMIC_CAS:
                    if old == wr.compare:
                        mr.buffer.write(
                            offset, wr.swap.to_bytes(8, "little", signed=False)
                        )
                else:  # fetch-and-add, wrapping at 2^64 like hardware
                    new = (old + wr.compare) % (1 << 64)
                    mr.buffer.write(offset, new.to_bytes(8, "little"))
                if wr.local_mr is not None:
                    wr.local_mr.buffer.write(
                        wr.local_mr.offset_of(wr.local_addr),
                        old.to_bytes(8, "little"),
                    )
                if remote.rsan.enabled:
                    remote.rsan.on_apply(remote.host.host_id, wr.remote_addr,
                                         8, "atomic", wr)
                remote._send_control(
                    self,
                    lambda: self._after(
                        self.model.completion_s,
                        lambda: self._complete(
                            qp,
                            wr,
                            WcStatus.SUCCESS,
                            byte_len=8,
                            atomic_result=old,
                        ),
                    ),
                )

            self._after(
                remote.model.remote_dma_s + remote.model.atomic_extra_s, do_atomic
            )

        self._send_control(remote, on_request_arrival)

    # -- SEND / RECV ---------------------------------------------------------------

    def _launch_send(self, qp: QueuePair, wr: SendWR, remote_qp: QueuePair) -> None:
        remote = remote_qp.nic
        payload = self._snapshot_payload(wr)

        def on_data_arrival():
            if not remote.alive:
                self._schedule_retry_failure(qp, wr)
                return
            if remote_qp.state is not QpState.CONNECTED:
                self._nak(qp, wr, remote, "remote QP not in connected state")
                return
            rwr = remote_qp._take_recv()
            if rwr is None:
                # RC would RNR-retry; we park the message until a receive
                # is posted, at which point matching resumes.
                remote_qp._park_arrival(("send", payload, qp, wr))
                return
            remote._match_recv(remote_qp, rwr, "send", payload, qp, wr)

        self._transmit(remote, wr.bytes_on_wire, on_data_arrival)

    def _match_recv(
        self,
        dst_qp: QueuePair,
        rwr: RecvWR,
        kind: str,
        payload: Optional[bytes],
        src_qp: QueuePair,
        swr: SendWR,
    ) -> None:
        """Consume a posted receive for an arrived SEND or WRITE_IMM
        (runs on the receiver)."""
        src_nic = src_qp.nic
        if kind == "imm":
            # data already landed one-sidedly; the receive just carries
            # the immediate and the byte count
            self._after(
                self.model.completion_s,
                lambda: dst_qp.recv_cq.push(
                    WorkCompletion(
                        wr_id=rwr.wr_id,
                        status=WcStatus.SUCCESS,
                        opcode=Opcode.RECV_RDMA_WITH_IMM,
                        byte_len=swr.length,
                        qp=dst_qp,
                        imm_data=swr.imm_data,
                    )
                ),
            )
            return
        assert payload is not None
        if len(payload) > rwr.length:
            dst_qp.recv_cq.push(
                WorkCompletion(
                    wr_id=rwr.wr_id,
                    status=WcStatus.LOC_LEN_ERR,
                    opcode=Opcode.RECV,
                    byte_len=len(payload),
                    qp=dst_qp,
                    detail=f"payload {len(payload)} exceeds recv buffer {rwr.length}",
                )
            )
            dst_qp.set_error("receive buffer too small")
            self._send_control(
                src_nic,
                lambda: src_nic._after(
                    src_nic.model.completion_s,
                    lambda: src_nic._complete(
                        src_qp,
                        swr,
                        WcStatus.REM_INV_REQ_ERR,
                        detail="remote receive buffer too small",
                    ),
                ),
            )
            return
        rwr.local_mr.buffer.write(rwr.local_mr.offset_of(rwr.local_addr), payload)
        self._after(
            self.model.completion_s,
            lambda: dst_qp.recv_cq.push(
                WorkCompletion(
                    wr_id=rwr.wr_id,
                    status=WcStatus.SUCCESS,
                    opcode=Opcode.RECV,
                    byte_len=len(payload),
                    qp=dst_qp,
                )
            ),
        )
        self._send_control(
            src_nic,
            lambda: src_nic._after(
                src_nic.model.completion_s,
                lambda: src_nic._complete(
                    src_qp, swr, WcStatus.SUCCESS, byte_len=swr.length
                ),
            ),
        )
