"""Host memory and registered memory regions.

Data is real: buffers are ``bytearray`` objects, one-sided operations
move actual bytes between them, and applications above RStore compute
bit-exact results through the simulated fabric.

Each host owns a :class:`HostMemory` with a page-aligned bump allocator
handing out *addresses* in a host-private virtual address space; a
:class:`MemoryRegion` pins a buffer and grants it local/remote keys, the
unit of the verbs permission model.
"""

from __future__ import annotations

import itertools
from typing import Optional

from repro.rdma.device import PAGE_SIZE
from repro.rdma.types import Access, RdmaError

__all__ = ["Buffer", "SparseBuffer", "HostMemory", "MemoryRegion",
           "reset_key_counter"]

_key_counter = itertools.count(1)


def reset_key_counter() -> None:
    """Restart lkey/rkey handout (fresh-simulation reproducibility).

    Handle values leak into pickled RPC payloads, so their *sizes* —
    and therefore simulated wire times — depend on how many simulations
    ran earlier in this process unless each one starts from the same
    counter state.  Only call between simulations.
    """
    global _key_counter
    _key_counter = itertools.count(1)


class Buffer:
    """A contiguous allocation in a host's virtual address space."""

    __slots__ = ("addr", "data", "host_id")

    def __init__(self, addr: int, length: int, host_id: int):
        self.addr = addr
        self.data = bytearray(length)
        self.host_id = host_id

    def __len__(self) -> int:
        return len(self.data)

    @property
    def end(self) -> int:
        return self.addr + len(self)

    def write(self, offset: int, payload: bytes) -> None:
        if offset < 0 or offset + len(payload) > len(self.data):
            raise RdmaError(
                f"write of {len(payload)} bytes at offset {offset} exceeds "
                f"buffer of {len(self.data)} bytes"
            )
        self.data[offset : offset + len(payload)] = payload

    def read(self, offset: int, length: int) -> bytes:
        if offset < 0 or offset + length > len(self.data):
            raise RdmaError(
                f"read of {length} bytes at offset {offset} exceeds buffer "
                f"of {len(self.data)} bytes"
            )
        return bytes(self.data[offset : offset + length])


class SparseBuffer(Buffer):
    """A large allocation whose blocks materialize on first write.

    Memory servers donate arenas of many GiB; CPython cannot afford to
    back those with real ``bytearray`` storage up front.  A sparse
    buffer stores only written blocks (64 KiB each); reads of untouched
    ranges return zeros, matching freshly allocated DRAM.
    """

    BLOCK = 64 * 1024

    __slots__ = ("_length", "_blocks")

    def __init__(self, addr: int, length: int, host_id: int):
        # Deliberately skip Buffer.__init__: no dense backing store.
        self.addr = addr
        self.host_id = host_id
        self._length = length
        self._blocks: dict[int, bytearray] = {}

    def __len__(self) -> int:
        return self._length

    @property
    def data(self):  # pragma: no cover - dense-only API
        raise RdmaError("sparse buffers expose read()/write(), not .data")

    @property
    def materialized_bytes(self) -> int:
        return len(self._blocks) * self.BLOCK

    def write(self, offset: int, payload: bytes) -> None:
        if offset < 0 or offset + len(payload) > self._length:
            raise RdmaError(
                f"write of {len(payload)} bytes at offset {offset} exceeds "
                f"buffer of {self._length} bytes"
            )
        pos = 0
        while pos < len(payload):
            block_no, block_off = divmod(offset + pos, self.BLOCK)
            take = min(self.BLOCK - block_off, len(payload) - pos)
            block = self._blocks.get(block_no)
            if block is None:
                block = bytearray(self.BLOCK)
                self._blocks[block_no] = block
            block[block_off : block_off + take] = payload[pos : pos + take]
            pos += take

    def read(self, offset: int, length: int) -> bytes:
        if offset < 0 or length < 0 or offset + length > self._length:
            raise RdmaError(
                f"read of {length} bytes at offset {offset} exceeds buffer "
                f"of {self._length} bytes"
            )
        parts = []
        pos = 0
        while pos < length:
            block_no, block_off = divmod(offset + pos, self.BLOCK)
            take = min(self.BLOCK - block_off, length - pos)
            block = self._blocks.get(block_no)
            if block is None:
                parts.append(bytes(take))
            else:
                parts.append(bytes(block[block_off : block_off + take]))
            pos += take
        return b"".join(parts)


class HostMemory:
    """Page-aligned bump allocator for one host's DRAM."""

    #: allocations at or above this size get sparse backing
    SPARSE_THRESHOLD = 8 * 1024 * 1024

    def __init__(self, host_id: int, base_addr: int = 0x10000):
        self.host_id = host_id
        self._next_addr = base_addr
        self.allocated_bytes = 0

    def alloc(self, length: int) -> Buffer:
        if length <= 0:
            raise ValueError(f"allocation size must be positive, got {length}")
        addr = self._next_addr
        pages = -(-length // PAGE_SIZE)
        self._next_addr += pages * PAGE_SIZE
        self.allocated_bytes += length
        if length >= self.SPARSE_THRESHOLD:
            return SparseBuffer(addr, length, self.host_id)
        return Buffer(addr, length, self.host_id)


class MemoryRegion:
    """A registered (pinned) buffer with access keys.

    ``lkey`` authorises local use in work requests; ``rkey`` authorises
    remote one-sided access, subject to the region's access flags.
    """

    __slots__ = ("buffer", "access", "lkey", "rkey", "pd", "valid")

    def __init__(self, buffer: Buffer, access: Access, pd=None):
        self.buffer = buffer
        self.access = access
        self.lkey = next(_key_counter)
        self.rkey = next(_key_counter)
        self.pd = pd
        self.valid = True

    @property
    def addr(self) -> int:
        return self.buffer.addr

    @property
    def length(self) -> int:
        return len(self.buffer)

    @property
    def pages(self) -> int:
        return -(-self.length // PAGE_SIZE)

    def check_remote(self, addr: int, length: int, need: Access) -> Optional[str]:
        """Validate a remote access; return an error string or ``None``."""
        if not self.valid:
            return "memory region has been deregistered"
        if not (self.access & need):
            return f"region lacks {need} permission"
        if addr < self.addr or addr + length > self.addr + self.length:
            return (
                f"access [{addr:#x}, +{length}) outside region "
                f"[{self.addr:#x}, +{self.length})"
            )
        return None

    def offset_of(self, addr: int) -> int:
        return addr - self.addr

    def deregister(self) -> None:
        self.valid = False
