"""Shared enums and exceptions for the RDMA model."""

from __future__ import annotations

import enum

__all__ = ["Opcode", "WcStatus", "QpState", "Access", "RdmaError", "QpError"]


class Opcode(enum.Enum):
    """Work-request / completion opcodes (the subset RStore needs)."""

    SEND = "send"
    RECV = "recv"
    RDMA_WRITE = "rdma_write"
    #: write plus immediate: places data one-sidedly AND consumes a
    #: receive WQE at the target, raising a recv completion that carries
    #: the 32-bit immediate — data delivery with a doorbell attached
    RDMA_WRITE_IMM = "rdma_write_imm"
    RECV_RDMA_WITH_IMM = "recv_rdma_with_imm"
    RDMA_READ = "rdma_read"
    ATOMIC_CAS = "atomic_cas"
    ATOMIC_FAA = "atomic_faa"


#: opcodes executed one-sidedly by the remote NIC, no remote CPU
ONE_SIDED = frozenset(
    {Opcode.RDMA_WRITE, Opcode.RDMA_READ, Opcode.ATOMIC_CAS, Opcode.ATOMIC_FAA}
)


class WcStatus(enum.Enum):
    """Work-completion status codes."""

    SUCCESS = "success"
    LOC_LEN_ERR = "local_length_error"
    LOC_PROT_ERR = "local_protection_error"
    REM_ACCESS_ERR = "remote_access_error"
    REM_INV_REQ_ERR = "remote_invalid_request"
    RNR_RETRY_EXC_ERR = "receiver_not_ready"
    RETRY_EXC_ERR = "transport_retry_exceeded"
    WR_FLUSH_ERR = "work_request_flushed"


class QpState(enum.Enum):
    """Queue-pair lifecycle (collapsed INIT/RTR/RTS handshake)."""

    RESET = "reset"
    CONNECTED = "connected"  # RTS: ready to send and receive
    ERROR = "error"


class Access(enum.Flag):
    """Memory-region access permissions."""

    LOCAL_WRITE = enum.auto()
    REMOTE_READ = enum.auto()
    REMOTE_WRITE = enum.auto()
    REMOTE_ATOMIC = enum.auto()

    @classmethod
    def all_remote(cls) -> "Access":
        return (
            cls.LOCAL_WRITE | cls.REMOTE_READ | cls.REMOTE_WRITE | cls.REMOTE_ATOMIC
        )


class RdmaError(Exception):
    """Synchronous verbs failure (bad arguments, wrong state, full queue)."""


class QpError(RdmaError):
    """The queue pair is in the ERROR state."""
