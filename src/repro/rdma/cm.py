"""Connection manager (the rdma_cm analogue).

Connection establishment is the most expensive control-path operation:
address/route resolution, QP creation on both sides, and a 1.5-RTT
REQ/REP/RTU handshake.  RStore performs it once per (client, server)
pair at map time and never on the data path.

The manager itself is a cluster-wide registry, standing in for the
out-of-band channel (IP/ARP/SA) a real fabric uses for rendezvous; all
*costs* are still charged to the participating hosts and links.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional

from repro.rdma.cq import CompletionQueue
from repro.rdma.nic import RNic
from repro.rdma.pd import ProtectionDomain
from repro.rdma.qp import QueuePair
from repro.rdma.types import RdmaError
from repro.simnet.kernel import Simulator
from repro.simnet.topology import Network

__all__ = ["ConnectionManager", "ConnectError", "Listener"]


class ConnectError(RdmaError):
    """Connection establishment failed (no listener, or peer dead)."""


@dataclass
class Listener:
    """A passive endpoint accepting connections for one service id."""

    nic: RNic
    service_id: str
    pd: ProtectionDomain
    send_cq: CompletionQueue
    recv_cq: CompletionQueue
    #: invoked with each newly connected server-side QP
    on_connect: Optional[Callable[[QueuePair], None]] = None
    sq_depth: int = 128
    rq_depth: int = 1024


class ConnectionManager:
    """Cluster-wide rendezvous: listeners by (host, service id)."""

    def __init__(self, sim: Simulator, network: Network):
        self.sim = sim
        self.network = network
        self._listeners: dict[tuple[int, str], Listener] = {}
        #: established connections, for metrics
        self.connections = 0

    def listen(
        self,
        nic: RNic,
        service_id: str,
        pd: ProtectionDomain,
        send_cq: CompletionQueue,
        recv_cq: Optional[CompletionQueue] = None,
        on_connect: Optional[Callable[[QueuePair], None]] = None,
        sq_depth: int = 128,
        rq_depth: int = 1024,
    ) -> Listener:
        """Register a passive endpoint on *nic* under *service_id*."""
        key = (nic.host.host_id, service_id)
        if key in self._listeners:
            raise RdmaError(f"{service_id!r} already listening on {nic.host.name}")
        listener = Listener(
            nic=nic,
            service_id=service_id,
            pd=pd,
            send_cq=send_cq,
            recv_cq=send_cq if recv_cq is None else recv_cq,
            on_connect=on_connect,
            sq_depth=sq_depth,
            rq_depth=rq_depth,
        )
        self._listeners[key] = listener
        return listener

    def stop_listening(self, nic: RNic, service_id: str) -> None:
        self._listeners.pop((nic.host.host_id, service_id), None)

    def connect(
        self,
        nic: RNic,
        remote_host_id: int,
        service_id: str,
        pd: ProtectionDomain,
        send_cq: CompletionQueue,
        recv_cq: Optional[CompletionQueue] = None,
        sq_depth: int = 128,
        rq_depth: int = 1024,
    ):
        """Connect to a listener (generator); returns the active-side QP.

        Charges the full handshake: resolution, QP creation on both
        sides, REQ/REP/RTU control messages across the fabric.
        """
        model = nic.model
        span = nic.obs.tracer.span("control.cm.connect", kind="control",
                                   src=nic.host.host_id,
                                   dst=remote_host_id, service=service_id)
        # Address & route resolution happen before any packet is sent.
        yield self.sim.timeout(model.cm_setup_s / 2)
        listener = self._listeners.get((remote_host_id, service_id))
        if listener is None:
            span.finish(ok=False)
            raise ConnectError(
                f"no listener for service {service_id!r} on host {remote_host_id}"
            )
        server_nic = listener.nic
        if not server_nic.alive or not nic.alive:
            span.finish(ok=False)
            raise ConnectError(f"peer host {remote_host_id} is unreachable")

        client_qp = yield from nic.create_qp(
            pd, send_cq, recv_cq, sq_depth=sq_depth, rq_depth=rq_depth
        )
        # REQ -> server
        yield from self._handshake(nic, server_nic, span)
        server_qp = yield from server_nic.create_qp(
            listener.pd,
            listener.send_cq,
            listener.recv_cq,
            sq_depth=listener.sq_depth,
            rq_depth=listener.rq_depth,
        )
        # The server finishes its accept-side setup (e.g. posting the
        # receive ring) *before* acknowledging — real rdma_cm servers
        # call accept only once resources are in place.  on_connect may
        # be a plain callable or a generator function; generators are
        # awaited as part of the handshake.
        if listener.on_connect is not None:
            result = listener.on_connect(server_qp)
            if hasattr(result, "throw"):
                yield from result
        # REP -> client
        yield from self._handshake(server_nic, nic, span)
        # RTU -> server
        yield from self._handshake(nic, server_nic, span)
        # INIT->RTR->RTS transitions on both ends
        yield self.sim.timeout(model.cm_setup_s / 2)

        client_qp._connect_to(server_qp)
        server_qp._connect_to(client_qp)
        self.connections += 1
        span.finish(ok=True)
        return client_qp

    def _handshake(self, src: RNic, dst: RNic, span):
        """One handshake control message, bounded by the CM's retry
        timer (generator).

        A partitioned fabric eats control messages silently; real
        rdma_cm surfaces that as a timeout on the active side.  Without
        partitions armed the timer never fires first, so the fast path
        is unchanged.
        """
        delivered = self._control(src, dst)
        if self.network.fault_filter is None:
            yield delivered
            return
        timer = self.sim.timeout(src.model.retry_timeout_s)
        yield self.sim.any_of([delivered, timer])
        if not delivered.triggered:
            span.finish(ok=False)
            raise ConnectError(
                f"handshake {src.host.name} -> {dst.host.name} timed out "
                "(partitioned?)"
            )

    def _control(self, src: RNic, dst: RNic):
        """One handshake control message across the fabric (event)."""
        return self.network.transmit_message(
            src.host,
            dst.host,
            src.model.control_message_bytes,
            header_bytes=src.model.frame_header_bytes,
        )
