"""Simulated RDMA verbs.

This package models an InfiniBand-class RDMA stack faithfully enough to
reproduce the paper's performance arguments:

* **Control path is expensive**: protection domains, memory registration
  (cost proportional to pages), queue-pair creation and connection
  establishment all charge realistic setup latencies.
* **Data path is fast and offloaded**: one-sided READ/WRITE/atomic
  operations are executed entirely by the (simulated) NICs — the remote
  host's CPU model is never touched — while SEND/RECV involves both NICs
  plus receive-queue matching.

The public surface mirrors the verbs API: open a device
(:class:`~repro.rdma.nic.RNic`), allocate a PD, register MRs, create RC
QPs, connect them through the connection manager, post work requests and
poll completion queues.
"""

from repro.rdma.cm import ConnectionManager
from repro.rdma.cq import CompletionQueue, WorkCompletion
from repro.rdma.device import NicModel
from repro.rdma.memory import Buffer, HostMemory, MemoryRegion
from repro.rdma.nic import RNic
from repro.rdma.pd import ProtectionDomain
from repro.rdma.qp import QueuePair
from repro.rdma.types import Access, Opcode, QpState, RdmaError, WcStatus
from repro.rdma.wr import RecvWR, SendWR

__all__ = [
    "Access",
    "Buffer",
    "CompletionQueue",
    "ConnectionManager",
    "HostMemory",
    "MemoryRegion",
    "NicModel",
    "Opcode",
    "ProtectionDomain",
    "QpState",
    "QueuePair",
    "RNic",
    "RdmaError",
    "RecvWR",
    "SendWR",
    "WcStatus",
    "WorkCompletion",
]
