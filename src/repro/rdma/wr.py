"""Work requests.

A :class:`SendWR` describes one operation posted to a send queue; a
:class:`RecvWR` describes one receive buffer posted to a receive queue.

``wire_length`` supports the reproduction's scaled experiments: when an
application simulates data larger than CPython can materialise, it keeps
real bytes for a representative sample and sets ``wire_length`` to the
logical transfer size; the fabric charges time for ``wire_length`` while
the byte copy moves the real payload.  It defaults to the real length.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Optional

from repro.rdma.memory import MemoryRegion
from repro.rdma.types import Opcode, RdmaError

__all__ = ["SendWR", "RecvWR"]


@dataclass
class SendWR:
    """One send-queue work request."""

    opcode: Opcode
    wr_id: Any = None
    #: local memory: region plus an address *within* it
    local_mr: Optional[MemoryRegion] = None
    local_addr: int = 0
    length: int = 0
    #: remote memory (one-sided ops only)
    remote_addr: int = 0
    rkey: int = 0
    #: request a completion on the send CQ (unsignaled sends skip it)
    signaled: bool = True
    #: atomics: compare/swap operands (CAS) or the addend (FAA)
    compare: int = 0
    swap: int = 0
    #: small payload carried inside the WQE instead of a local MR
    inline_data: Optional[bytes] = None
    #: 32-bit immediate delivered with RDMA_WRITE_IMM
    imm_data: int = 0
    #: logical size on the wire; defaults to ``length`` (see module doc)
    wire_length: Optional[int] = None

    def validate(self) -> None:
        if self.opcode is Opcode.RECV:
            raise RdmaError("RECV is posted via post_recv, not post_send")
        if self.opcode in (Opcode.ATOMIC_CAS, Opcode.ATOMIC_FAA):
            if self.length not in (0, 8):
                raise RdmaError("atomics operate on exactly 8 bytes")
            self.length = 8
        if self.inline_data is not None:
            if self.local_mr is not None:
                raise RdmaError("inline sends do not take a local MR")
            self.length = len(self.inline_data)
        elif self.opcode is not Opcode.ATOMIC_FAA and self.length < 0:
            raise RdmaError(f"negative length {self.length}")
        atomic = self.opcode in (Opcode.ATOMIC_CAS, Opcode.ATOMIC_FAA)
        if (
            self.length > 0
            and self.inline_data is None
            and self.local_mr is None
            and not atomic
        ):
            # Atomics are exempt: the old value returns in the completion
            # (and lands in local memory only when a local MR is given).
            raise RdmaError("non-inline work request needs a local MR")
        if self.local_mr is not None:
            err = _check_local(self.local_mr, self.local_addr, self.length)
            if err:
                raise RdmaError(err)
        if self.wire_length is not None and self.wire_length < self.length:
            raise RdmaError(
                f"wire_length {self.wire_length} smaller than payload "
                f"{self.length}"
            )

    @property
    def bytes_on_wire(self) -> int:
        return self.wire_length if self.wire_length is not None else self.length


@dataclass
class RecvWR:
    """One receive-queue work request (a landing buffer for SENDs)."""

    local_mr: MemoryRegion
    local_addr: int = 0
    length: int = 0
    wr_id: Any = None

    def __post_init__(self):
        if self.local_addr == 0:
            self.local_addr = self.local_mr.addr
        if self.length == 0:
            self.length = self.local_mr.length - (
                self.local_addr - self.local_mr.addr
            )
        err = _check_local(self.local_mr, self.local_addr, self.length)
        if err:
            raise RdmaError(err)


def _check_local(mr: MemoryRegion, addr: int, length: int) -> Optional[str]:
    if not mr.valid:
        return "local memory region has been deregistered"
    if addr < mr.addr or addr + length > mr.addr + mr.length:
        return (
            f"local access [{addr:#x}, +{length}) outside region "
            f"[{mr.addr:#x}, +{mr.length})"
        )
    return None
