"""One-call testbed construction for experiments and examples."""

from repro.cluster.builder import Cluster, build_cluster

__all__ = ["Cluster", "build_cluster"]
