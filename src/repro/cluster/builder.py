"""Build a simulated RStore deployment in one call.

``build_cluster(12)`` reproduces the paper's testbed shape: twelve
machines on one FDR switch, a master on machine 0, a memory server on
every machine, and clients wherever the application runs.  The call
boots everything inside the simulation (charging realistic startup
costs) and returns with the cluster ready at some simulated time > 0;
experiments measure deltas from there.
"""

from __future__ import annotations

from typing import Iterable, Optional

from repro.core.client import RStoreClient
from repro.core.config import RStoreConfig
from repro.core.master import Master
from repro.core.metalog import MetaLog
from repro.core.server import MemoryServer
from repro.net.tcp import TcpStack
from repro.rdma.cm import ConnectionManager
from repro.rdma.memory import reset_key_counter
from repro.rdma.nic import RNic
from repro.rdma.pd import reset_pd_counter
from repro.rdma.qp import reset_qpn_counter
from repro.sanitize import rsan_for
from repro.simnet.config import NetworkConfig
from repro.simnet.kernel import Simulator
from repro.simnet.topology import Network

__all__ = ["Cluster", "build_cluster"]


class Cluster:
    """A booted testbed: simulator, fabric, store services, clients."""

    def __init__(self, sim: Simulator, net: Network, cm: ConnectionManager,
                 config: RStoreConfig):
        self.sim = sim
        self.net = net
        self.cm = cm
        self.config = config
        self.nics: list[RNic] = []
        self.tcp_stacks: list[TcpStack] = []
        #: one master instance per metadata shard (index = shard id)
        self.masters: list[Optional[Master]] = [None] * config.control_shards
        #: the durable metadata logs, one WAL per shard — owned here so
        #: they outlive master instances across crash/restart cycles
        self.metalogs: list[MetaLog] = [
            MetaLog(
                sim,
                append_latency_s=config.metalog_append_s,
                checkpoint_every=config.metalog_checkpoint_every,
            )
            for _ in range(config.control_shards)
        ]
        self.servers: dict[int, MemoryServer] = {}
        self.clients: dict[int, RStoreClient] = {}
        self.boot_time: float = 0.0
        self.faults = None

    @property
    def num_machines(self) -> int:
        return len(self.net)

    @property
    def master(self) -> Optional[Master]:
        """Shard 0's master — *the* master when ``control_shards == 1``."""
        return self.masters[0] if self.masters else None

    @property
    def metalog(self) -> MetaLog:
        """Shard 0's metadata WAL (single-shard compatibility alias)."""
        return self.metalogs[0]

    def nic(self, host_id: int) -> RNic:
        return self.nics[host_id]

    def client(self, host_id: int) -> RStoreClient:
        """The (already started) RStore client on *host_id*."""
        return self.clients[host_id]

    def server(self, host_id: int) -> MemoryServer:
        return self.servers[host_id]

    def spawn(self, generator, name: str = ""):
        """Run an application generator as a simulated process."""
        return self.sim.process(generator, name=name)

    def run(self, until=None):
        """Advance the simulation (to an event, a time, or quiescence)."""
        return self.sim.run(until=until)

    def run_app(self, generator, name: str = "app"):
        """Spawn *generator* and run until it finishes; returns its value."""
        return self.sim.run(until=self.sim.process(generator, name=name))

    def kill_server(self, host_id: int) -> None:
        """Fail a memory server's host (NIC down, heartbeats stop)."""
        self.servers[host_id].kill()

    def crash_master(self, shard: int = 0) -> None:
        """Fail-stop one metadata shard's master process.

        Its in-memory state is gone; only that shard's WAL survives.
        Every control-plane connection is torn down so clients and
        servers observe channel death.  The master *host* (NIC, fabric
        link) stays up — this is a process crash, not a machine crash.
        Other shards keep serving the names they own.
        """
        assert self.masters[shard] is not None, "no master to crash"
        self.masters[shard].crash()

    def restart_master(self, shard: int = 0):
        """Boot a fresh master for one shard on the same host (generator).

        The new instance replays that shard's WAL, bumps its epoch, and
        runs the recovery protocol (re-registration grace, straggler
        burial, repair resumption).
        """
        master = Master(
            self.sim,
            self.nics[self.config.master_host],
            self.cm,
            self.config,
            metalog=self.metalogs[shard],
            shard_id=shard,
        )
        self.masters[shard] = master
        yield from master.start()
        return master

    def network_bytes(self) -> int:
        return self.net.bytes_carried


def build_cluster(
    num_machines: int = 12,
    config: Optional[RStoreConfig] = None,
    net_config: Optional[NetworkConfig] = None,
    server_hosts: Optional[Iterable[int]] = None,
    client_hosts: Optional[Iterable[int]] = None,
    server_capacity: Optional[int] = None,
    faults=None,
) -> Cluster:
    """Construct and boot a cluster; returns it ready for use.

    By default the master runs on machine 0, every machine (including
    0) donates DRAM, and every machine gets a started client — matching
    the paper's co-located deployment.

    ``faults`` takes a :class:`~repro.simnet.faults.FaultInjector`; its
    schedule is armed right after boot (windows count from that point).
    """
    config = config or RStoreConfig()
    # Restart the process-global handle counters so a cluster's rkeys,
    # QPNs and PD handles do not depend on how many simulations ran
    # earlier in this process.  Handle values ride inside pickled RPC
    # payloads, so their sizes shift wire times by nanoseconds — enough
    # to break bit-for-bit replay of seeded fault scenarios.
    reset_key_counter()
    reset_pd_counter()
    reset_qpn_counter()
    sim = Simulator()
    if config.sanitize:
        rsan_for(sim).enable()
    net = Network(sim, num_machines, net_config or NetworkConfig())
    cm = ConnectionManager(sim, net)
    cluster = Cluster(sim, net, cm, config)
    cluster.nics = [RNic(sim, host, net) for host in net.hosts]
    cluster.tcp_stacks = [TcpStack(sim, host, net) for host in net.hosts]

    server_ids = list(server_hosts) if server_hosts is not None else list(
        range(num_machines)
    )
    client_ids = list(client_hosts) if client_hosts is not None else list(
        range(num_machines)
    )

    def boot():
        # Every metadata shard boots on the master host — partitioning
        # the namespace, not (yet) spreading it over machines; each is
        # its own process with its own WAL and epoch.
        for shard in range(config.control_shards):
            master = Master(sim, cluster.nics[config.master_host], cm,
                            config, metalog=cluster.metalogs[shard],
                            shard_id=shard)
            cluster.masters[shard] = master
            yield from master.start()
        # Memory servers boot concurrently, like daemons across a rack.
        server_procs = []
        for host_id in server_ids:
            server = MemoryServer(
                sim, cluster.nics[host_id], cm, config,
                capacity=server_capacity,
            )
            cluster.servers[host_id] = server
            server_procs.append(sim.process(server.start(),
                                            name=f"boot-server-{host_id}"))
        yield sim.all_of(server_procs)
        client_procs = []
        for host_id in client_ids:
            client = RStoreClient(sim, cluster.nics[host_id], cm, config)
            cluster.clients[host_id] = client
            client_procs.append(sim.process(client.start(),
                                            name=f"boot-client-{host_id}"))
        yield sim.all_of(client_procs)

    sim.run(until=sim.process(boot(), name="cluster-boot"))
    cluster.boot_time = sim.now
    if faults is not None:
        cluster.faults = faults.attach(cluster)
    return cluster
