"""Dynamic analysis for the simulated one-sided data path."""

from repro.sanitize.rsan import (
    Access,
    OpStamp,
    RaceReport,
    RaceSanitizer,
    rsan_for,
)

__all__ = [
    "Access",
    "OpStamp",
    "RaceReport",
    "RaceSanitizer",
    "rsan_for",
]
