"""RSan — a happens-before race sanitizer for simulated one-sided RDMA.

One-sided READ / WRITE / FAA / CAS bypass the server CPU entirely, so
nothing on the remote side serializes concurrent clients: two writers
aiming at the same bytes silently interleave, exactly the hazard Storm
and the RDMA-vs-RPC literature document.  RSan makes those hazards
loud.  When enabled it shadows every remote access as
``(actor, byte-range, op-kind, vector clock)`` and reports any pair of
conflicting accesses with no happens-before edge between them.

The happens-before model
------------------------

Each *actor* (one client host, or a server acting as repair copier)
owns a vector clock.  Ordering edges come from the repo's existing
synchronization vocabulary — nothing new is invented:

* **QP FIFO** — two ops from the same actor never race: each
  client-server pair shares one QP and the simulated NIC applies WRs
  in post order, so same-actor accesses are program-ordered.
* **CQ completions** — an op happens-before everything its issuer does
  *after observing the completion* (``OpFuture.wait`` returning).  A
  posted-but-unacked op is still "in flight": a lock released before
  ``wait()`` returns does **not** cover it, which is precisely the
  dropped-future bug class repro-lint RL003 hunts statically.
* **RemoteLock** — release publishes the holder's clock under the lock
  name; a later successful acquire joins it.
* **SenseBarrier** — every arrival publishes under
  ``(barrier, name, generation)``; every departure joins, so all
  pre-barrier work happens-before all post-barrier work.
* **SeqLock** — a writer's ``publish`` releases under the *next*
  version; a validated reader snapshot (or a successful ``try_lock``)
  joins the version it observed.
* **DoorbellQueue** — a producer releases under the message sequence
  number before writing the slot; the consumer joins after reading it
  (and releases its cumulative head so producers reusing a slot join
  the consumer).
* **Master control path** — every control RPC releases-then-acquires
  one coarse ``("master", shard)`` key.  This intentionally
  over-synchronizes (alloc/map/lookup serialize through the owning
  single-threaded metadata shard), trading false negatives for zero
  control-path false positives.

The watermark split
-------------------

``_Actor.vc[actor]`` is the actor's *acked* watermark, not a count of
posted ops.  Each tracked op gets a fresh sequence number at NIC post
time and joins ``outstanding``; acking (``OpFuture.wait`` returning)
removes its seqs and advances the watermark to ``min(outstanding) - 1``
— never past an older op still in flight.  Ops that are never waited on
therefore stay unordered w.r.t. other actors forever (their seq stays
above every published watermark), which is exactly the semantics a
dropped async future deserves.  Raw WRs outside the client op layer
(control RPC sends, repair copies) get stamps for bookkeeping but are
never tracked in ``outstanding``, so they cannot stall the watermark.

Exemptions
----------

Coordination primitives are racy *by design* at the byte level (sense
polling vs. the sense flip, seqlock snapshots vs. body writes, doorbell
ring traffic, counter polling).  Their internal accesses run inside
``with rsan.exempt(actor):`` scopes — neither checked nor stored — and
order instead flows through the semantic release/acquire keys above.
Server-to-server repair READs are master-coordinated and marked with
``wr.rsan_sync``.

Everything here is pure bookkeeping on Python objects: no simulated
time, no RNG streams, no instruments.  Enabling the sanitizer cannot
perturb what the simulation computes — clean runs are bit-identical
with it on or off, and the disabled path costs one attribute check.
"""

from __future__ import annotations

import traceback
from weakref import WeakKeyDictionary

__all__ = [
    "Access",
    "OpStamp",
    "RaceReport",
    "RaceSanitizer",
    "rsan_for",
]

#: remote-access kinds that conflict when they overlap with no HB edge.
#: read-read never races; atomic-atomic is serialized by the remote
#: NIC's read-modify-write, so only atomic-vs-plain conflicts count.
_CONFLICTS = {
    "read": ("write", "atomic"),
    "write": ("read", "write", "atomic"),
    "atomic": ("read", "write"),
}

#: stack frames from these path fragments are plumbing, not app code
_PLUMBING = (
    "/repro/core/client.py",
    "/repro/sanitize/",
    "/repro/coord/",
    "/repro/rdma/",
)


def _site_of() -> str:
    """The innermost non-plumbing frame, as ``dir/file.py:line``."""
    for frame in reversed(traceback.extract_stack()):
        fname = frame.filename.replace("\\", "/")
        if any(part in fname for part in _PLUMBING):
            continue
        parts = fname.rsplit("/", 2)
        short = "/".join(parts[-2:]) if len(parts) > 1 else fname
        return f"{short}:{frame.lineno}"
    return "<unknown>"


class _Actor:
    """Per-actor sanitizer state."""

    __slots__ = ("vc", "posted", "exempt", "outstanding")

    def __init__(self, actor_id: int):
        #: vector clock; ``vc[actor_id]`` is the *acked* watermark
        self.vc: dict[int, int] = {actor_id: 0}
        #: last sequence number handed to a posted access
        self.posted = 0
        #: nesting depth of ambient ``exempt`` scopes
        self.exempt = 0
        #: seqs of tracked (client-layer) ops posted but not yet acked
        self.outstanding: set[int] = set()


class OpStamp:
    """Sanitizer identity of one logical client op (one OpFuture).

    Created once per future; replays of failed pieces reuse the same
    stamp, appending fresh sequence numbers, so the op acks as one unit
    however many times its pieces were reposted.
    """

    __slots__ = ("actor", "kind", "site", "sync", "seqs", "acked")

    def __init__(self, actor: int, kind: str, site: str, sync: bool):
        self.actor = actor
        self.kind = kind
        self.site = site
        #: issued inside an exempt scope (coordination internals)
        self.sync = sync
        #: sequence numbers of every WR posted for this op
        self.seqs: list[int] = []
        self.acked = False


class Access:
    """One recorded remote access to ``[lo, hi)`` on one server."""

    __slots__ = ("actor", "kind", "site", "seq", "vec", "lo", "hi")

    def __init__(self, actor, kind, site, seq, vec, lo, hi):
        self.actor = actor
        self.kind = kind
        self.site = site
        self.seq = seq
        #: issuer's vector clock snapshot at post time
        self.vec = vec
        self.lo = lo
        self.hi = hi

    def describe(self) -> str:
        return (f"{self.kind} by client {self.actor} at {self.site} "
                f"(bytes [{self.lo}, {self.hi}))")


class RaceReport:
    """Two conflicting, concurrent accesses to overlapping bytes."""

    __slots__ = ("host", "lo", "hi", "first", "second")

    def __init__(self, host, lo, hi, first: Access, second: Access):
        self.host = host
        self.lo = lo
        self.hi = hi
        self.first = first
        self.second = second

    def describe(self) -> str:
        return (
            f"data race on server {self.host} bytes [{self.lo}, {self.hi}):\n"
            f"  {self.first.describe()}\n"
            f"  {self.second.describe()}"
        )


class _ExemptScope:
    """``with rsan.exempt(actor):`` — accesses inside are not checked."""

    __slots__ = ("_rsan", "_actor", "_entered")

    def __init__(self, rsan: "RaceSanitizer", actor: int):
        self._rsan = rsan
        self._actor = actor

    def __enter__(self):
        # remember whether we bumped the counter, so an enable() that
        # lands mid-scope cannot underflow it on exit
        self._entered = self._rsan.enabled
        if self._entered:
            self._rsan.actor(self._actor).exempt += 1
        return self

    def __exit__(self, *exc):
        if self._entered:
            self._rsan.actor(self._actor).exempt -= 1
        return False


class RaceSanitizer:
    """Happens-before race detection over simulated one-sided RDMA."""

    def __init__(self, sim):
        self.sim = sim
        self.enabled = False
        self.actors: dict[int, _Actor] = {}
        #: shadow store: server host id -> recorded accesses
        self.shadow: dict[int, list[Access]] = {}
        #: published clocks per sync key (lock names, barrier epochs, …)
        self._sync: dict[tuple, dict[int, int]] = {}
        self.races: list[RaceReport] = []
        self._reported: set[frozenset] = set()
        #: transaction outcomes observed (see :meth:`txn_commit`)
        self.txn_commits = 0
        self.txn_aborts = 0

    # -- lifecycle ------------------------------------------------------------

    def enable(self):
        self.enabled = True

    def disable(self):
        self.enabled = False

    def actor(self, actor_id: int) -> _Actor:
        act = self.actors.get(actor_id)
        if act is None:
            act = _Actor(actor_id)
            self.actors[actor_id] = act
        return act

    # -- stamping and posting -------------------------------------------------

    def op_stamp(self, actor_id: int, kind: str) -> OpStamp:
        """A stamp for one client-layer op; captures the app call site."""
        act = self.actor(actor_id)
        return OpStamp(actor_id, kind, _site_of(), act.exempt > 0)

    def on_post(self, wr, default_actor: int):
        """Assign this WR its sequence number and clock snapshot.

        Called at the NIC post point — not at WR creation — because the
        per-QP pump may defer posting, and the clock must reflect what
        the actor had synchronized *when the WR hit the wire*.
        """
        stamp = getattr(wr, "rsan", None)
        if stamp is None:
            # raw WR outside the client op layer (control RPC send,
            # repair copy).  Stamp it for bookkeeping but never track
            # it in ``outstanding`` — nothing will ever wait on it.
            sync = bool(getattr(wr, "rsan_sync", False))
            stamp = OpStamp(default_actor, "raw", "<internal>", sync)
            wr.rsan = stamp
        act = self.actor(stamp.actor)
        act.posted += 1
        seq = act.posted
        stamp.seqs.append(seq)
        tracked = not stamp.acked and stamp.kind != "raw"
        if tracked:
            act.outstanding.add(seq)
        wr._rsan_seq = seq
        wr._rsan_vec = dict(act.vc)

    def op_acked(self, stamp: OpStamp):
        """The issuer observed this op's completion (``wait`` returned).

        Everything the actor does from here on happens-after the op:
        drop its seqs from ``outstanding`` and advance the acked
        watermark — but never past an older op still in flight.
        """
        if stamp.acked:
            return
        stamp.acked = True
        act = self.actor(stamp.actor)
        act.outstanding.difference_update(stamp.seqs)
        watermark = (min(act.outstanding) - 1 if act.outstanding
                     else act.posted)
        if watermark > act.vc.get(stamp.actor, 0):
            act.vc[stamp.actor] = watermark

    # -- happens-before -------------------------------------------------------

    @staticmethod
    def _hb(old: Access, new: Access) -> bool:
        """Did *old* happen-before *new*?"""
        return old.seq <= new.vec.get(old.actor, 0)

    def sync_release(self, actor_id: int, key: tuple):
        """Publish *actor*'s clock under *key* (pointwise max merge)."""
        if not self.enabled:
            return
        act = self.actor(actor_id)
        slot = self._sync.setdefault(key, {})
        for aid, clock in act.vc.items():
            if clock > slot.get(aid, 0):
                slot[aid] = clock

    def sync_acquire(self, actor_id: int, key: tuple):
        """Join the clock published under *key* into *actor*'s clock."""
        if not self.enabled:
            return
        slot = self._sync.get(key)
        if not slot:
            return
        vc = self.actor(actor_id).vc
        for aid, clock in slot.items():
            if clock > vc.get(aid, 0):
                vc[aid] = clock

    def exempt(self, actor_id: int) -> _ExemptScope:
        return _ExemptScope(self, actor_id)

    # -- transaction edges ----------------------------------------------------

    def txn_commit(self, actor_id: int, read_keys=(), write_keys=()):
        """A transaction committed: its edges become happens-before.

        The runtime (:mod:`repro.txn`) joins the clock of every
        validated read version (*read_keys*) — the committed snapshot
        happens-after the writers that published it — and releases the
        actor's clock under every published version (*write_keys*), so
        later validated readers of those versions happen-after
        *everything* this transaction's client had acked at commit.
        Aborted transactions publish no edges at all: their snapshots
        never ordered anything (see :meth:`txn_abort`).
        """
        if not self.enabled:
            return
        for key in read_keys:
            self.sync_acquire(actor_id, key)
        for key in write_keys:
            self.sync_release(actor_id, key)
        self.txn_commits += 1

    def txn_abort(self, actor_id: int):
        """A transaction aborted: intent locks were rolled back and no
        happens-before edge was published (counted for reporting)."""
        if not self.enabled:
            return
        self.txn_aborts += 1

    # -- recording and checking -----------------------------------------------

    def on_apply(self, host_id: int, addr: int, length: int, kind: str, wr):
        """One remote access landed on *host_id*; check and record it."""
        if length <= 0:
            return
        stamp: OpStamp = wr.rsan
        if stamp.sync or stamp.kind == "raw":
            return  # coordination internals / control plumbing
        new = Access(stamp.actor, kind, stamp.site, wr._rsan_seq,
                     wr._rsan_vec, addr, addr + length)
        records = self.shadow.setdefault(host_id, [])
        conflicts = _CONFLICTS[kind]
        keep = []
        for old in records:
            if old.hi <= new.lo or new.hi <= old.lo:
                keep.append(old)
                continue
            same_actor = old.actor == new.actor
            ordered = same_actor or self._hb(old, new)
            if not ordered and old.kind in conflicts:
                self._report(host_id, old, new)
            # prune *old* if *new* fully covers it, dominates its
            # conflict set, and is ordered after it — any later access
            # racing old would also race new, so old is redundant.
            covered = old.lo >= new.lo and old.hi <= new.hi
            dominated = kind == "write" or old.kind == kind
            if not (covered and dominated and ordered):
                keep.append(old)
        keep.append(new)
        self.shadow[host_id] = keep

    def _report(self, host_id: int, old: Access, new: Access):
        # one report per pair of access sites, however many stripes or
        # overlapping byte windows the race spans
        key = frozenset({(old.actor, old.site, old.kind),
                         (new.actor, new.site, new.kind)})
        if key in self._reported:
            return
        self._reported.add(key)
        lo = max(old.lo, new.lo)
        hi = min(old.hi, new.hi)
        self.races.append(RaceReport(host_id, lo, hi, old, new))

    # -- teardown -------------------------------------------------------------

    def clear_range(self, host_id: int, lo: int, hi: int, actor=None):
        """Drop shadow records overlapping ``[lo, hi)`` on *host_id*.

        With *actor*, only that actor's records go (a client unmapping);
        without, every record goes (the master freeing the region).
        """
        records = self.shadow.get(host_id)
        if not records:
            return
        self.shadow[host_id] = [
            a for a in records
            if a.hi <= lo or hi <= a.lo
            or (actor is not None and a.actor != actor)
        ]

    def clear_region(self, desc, actor=None):
        """Drop shadow state for every replica byte range of *desc*."""
        for stripe in desc.stripes:
            for replica in stripe.replicas:
                self.clear_range(replica.host_id, replica.addr,
                                 replica.addr + stripe.length, actor=actor)

    # -- reporting ------------------------------------------------------------

    def report(self) -> str:
        if not self.races:
            return "rsan: no data races detected"
        lines = [f"rsan: {len(self.races)} data race(s) detected"]
        lines.extend(race.describe() for race in self.races)
        return "\n".join(lines)


_contexts: "WeakKeyDictionary" = WeakKeyDictionary()


def rsan_for(sim) -> RaceSanitizer:
    """The :class:`RaceSanitizer` of *sim* (created lazily, disabled)."""
    ctx = _contexts.get(sim)
    if ctx is None:
        ctx = RaceSanitizer(sim)
        _contexts[sim] = ctx
    return ctx
