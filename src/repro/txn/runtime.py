"""The OCC transaction runtime: buffered ops, validate, lock, publish.

A :class:`Txn` buffers ``get``/``put``/``delete`` over any number of
hashkv tables (plus raw :class:`~repro.coord.SeqLock` records) and
commits them atomically with optimistic concurrency control:

1. **Snapshot reads.**  Every slot a transaction touches is captured
   in a *single* one-sided READ (``RKVStore.snapshot_slot``) and its
   even version recorded in the read-set.  Probe chains record every
   slot they cross, so a concurrent insert that would change a
   lookup's outcome invalidates the transaction (phantom protection).
2. **Write intent.**  At commit the write-set is locked in global
   ``(region, offset)`` order — every transaction sorts the same way,
   so lock acquisition cannot deadlock — by CAS'ing each version word
   from its snapshot version to the transaction's unique odd *token*
   (the :class:`~repro.coord.SeqLock` token protocol).  A successful
   CAS doubles as validation: the version is unchanged since the
   snapshot, hence so is the body (versions only move forward).
3. **Validation.**  Read-only members of the read-set are re-read
   (one batched round of 8-byte version words) and must still carry
   their snapshot versions.
4. **Apply.**  Past validation the transaction is irrevocably
   committed: every publish is an idempotent one-sided write (body,
   then version) replayed until it lands, so crashes, partitions and
   wire faults during apply delay the commit but cannot tear it.

Aborts before the commit point release intent locks by restoring the
snapshot version — also an idempotent write, also replayed under
faults — so a failed transaction never leaves a slot locked.

Conflicts surface as :class:`TxnConflictError` (a
:class:`RecoverableError`); :meth:`TxnRuntime.run` retries the whole
closure on the shared deadline-aware :class:`~repro.coord.Backoff`,
so exhaustion raises the *typed* ``DeadlineExceededError`` /
``RetryBudgetExceededError`` like every other retry loop in the tree.
"""

from __future__ import annotations

from repro.coord import Backoff, SeqLock
from repro.coord.base import read_word
from repro.core.errors import (
    DeadlineExceededError,
    FatalError,
    RecoverableError,
    RStoreError,
)
from repro.kv.hashkv import _PROBE_LIMIT, _TOMBSTONE, KvError, KvFullError, _hash64

__all__ = ["Txn", "TxnRuntime", "TxnError", "TxnConflictError",
           "TxnMisuseError"]

_WORD = 8
#: snapshot retries while a writer holds a slot (matches hashkv)
_SNAP_RETRIES = 64
#: replays of one idempotent commit/abort write before declaring the
#: cluster unrecoverable (each replay itself rides the data path's
#: internal retries, so this spans many seconds of simulated faults)
_APPLY_ATTEMPTS = 64
#: transaction tokens live far above any version a slot can reach
_TOKEN_BASE = 1 << 62


class TxnError(RStoreError):
    """Transaction-layer failure."""


class TxnConflictError(TxnError, RecoverableError):
    """The transaction lost a race: a snapshot was invalidated or a
    write intent was beaten to a slot.  Recoverable — rerun it."""


class TxnMisuseError(TxnError, FatalError):
    """API misuse: operating on a transaction that already finished."""


class _ReadEntry:
    """One validated-snapshot obligation: *lock*'s word must still be
    *version* at commit."""

    __slots__ = ("lock", "version")

    def __init__(self, lock: SeqLock, version: int):
        self.lock = lock
        self.version = version


class _KeyState:
    """Everything the transaction knows about one table key."""

    __slots__ = ("store", "key", "index", "version", "exists", "value",
                 "frees", "pending")

    def __init__(self, store, key, index, version, exists, value, frees):
        self.store = store
        self.key = key
        self.index = index          # slot holding (or chosen for) the key
        self.version = version      # its snapshot version
        self.exists = exists
        self.value = value
        self.frees = frees          # insert candidates: [(index, version)]
        self.pending = None         # None | ("put", value) | ("delete",)


class _RecordState:
    """One raw SeqLock record's snapshot and buffered write."""

    __slots__ = ("lock", "version", "body", "pending")

    def __init__(self, lock, version, body):
        self.lock = lock
        self.version = version
        self.body = body
        self.pending = None


class _WriteEntry:
    """One slot/record to lock and publish at commit."""

    __slots__ = ("lock", "rkey", "version", "body")

    def __init__(self, lock, rkey, version, body):
        self.lock = lock
        self.rkey = rkey            # (region name, offset): the lock order
        self.version = version      # expected pre-lock version
        self.body = body


class Txn:
    """One transaction attempt: buffered reads/writes + OCC commit.

    Created by :meth:`TxnRuntime.begin` (or handed to the closure by
    :meth:`TxnRuntime.run`).  All methods are generators driven by the
    simulation.  A ``Txn`` is single-shot: after :meth:`commit` or
    :meth:`abort` it refuses further use.
    """

    def __init__(self, runtime: "TxnRuntime", token: int, deadline):
        self.runtime = runtime
        self.client = runtime.client
        self.token = token
        self.deadline = deadline
        self._phase = "open"
        self._reads: dict = {}      # rkey -> _ReadEntry
        self._keys: dict = {}       # (region, key) -> _KeyState
        self._records: dict = {}    # rkey -> _RecordState
        self._insert_taken: set = set()
        self._read_backoff = Backoff.for_client(
            self.client, f"txn-read-{runtime.label}"
        )

    @property
    def phase(self) -> str:
        """``open`` | ``committing`` | ``committed`` | ``aborted``."""
        return self._phase

    def _ensure_open(self):
        if self._phase != "open":
            raise TxnMisuseError(
                f"transaction already {self._phase}; begin a new one"
            )

    # -- the read-set ---------------------------------------------------------

    def _note_read(self, lock: SeqLock, version: int):
        """Record one snapshot in the read-set; a second look at the
        same word must agree with the first or the snapshot is already
        torn."""
        rkey = (lock.mapping.name, lock.offset)
        entry = self._reads.get(rkey)
        if entry is None:
            self._reads[rkey] = _ReadEntry(lock, version)
        elif entry.version != version:
            raise TxnConflictError(
                f"snapshot of {rkey} torn mid-transaction "
                f"(v{entry.version} -> v{version})"
            )
        return rkey

    def _snapshot_slot(self, store, index):
        """One even-versioned slot snapshot (generator), read-set
        recorded.  Retries while a writer holds the word."""
        for _attempt in range(_SNAP_RETRIES):
            version, key_len, key, value = yield from store.snapshot_slot(
                index
            )
            if version % 2 == 0:
                self._note_read(store.slot_lock(index), version)
                return key_len, key, value
            self.runtime._m_read_retries.inc()
            yield from self._read_backoff.pause()
        raise TxnConflictError(
            f"slot {index} stayed write-locked through "
            f"{_SNAP_RETRIES} snapshots"
        )

    def _lookup(self, store, key: bytes):
        """Probe *store* for *key* (generator); caches the state so a
        transaction reads each key from the network exactly once."""
        store._check_key(key)
        skey = (store.mapping.name, key)
        state = self._keys.get(skey)
        if state is not None:
            return state
        base = _hash64(key)
        frees = []
        state = None
        for probe in range(_PROBE_LIMIT):
            index = (base + probe) % store.slots
            key_len, slot_key, value = yield from self._snapshot_slot(
                store, index
            )
            if key_len == 0:
                frees.append((index, self._slot_version(store, index)))
                break  # a never-used slot terminates the probe chain
            if key_len == _TOMBSTONE:
                frees.append((index, self._slot_version(store, index)))
                continue
            if slot_key == key:
                state = _KeyState(store, key, index,
                                  self._slot_version(store, index),
                                  True, value, frees)
                break
        if state is None:
            state = _KeyState(store, key, None, None, False, None, frees)
        self._keys[skey] = state
        return state

    def _slot_version(self, store, index):
        return self._reads[(store.mapping.name,
                            store.slot_lock(index).offset)].version

    # -- buffered table ops ---------------------------------------------------

    def get(self, store, key: bytes):
        """Transactional lookup (generator): the committed value at
        snapshot time, or this transaction's own buffered write."""
        self._ensure_open()
        state = yield from self._lookup(store, key)
        if state.pending is not None:
            return state.pending[1] if state.pending[0] == "put" else None
        return state.value if state.exists else None

    def put(self, store, key: bytes, value: bytes):
        """Buffer an insert/overwrite (generator); applied at commit."""
        self._ensure_open()
        if len(value) > store.value_size:
            raise KvError(
                f"value of {len(value)} bytes exceeds slot value size "
                f"{store.value_size}"
            )
        state = yield from self._lookup(store, key)
        if state.index is None:
            # an absent key claims an insert slot now, so two inserts
            # in one transaction never target the same free slot
            for index, version in state.frees:
                if (store.mapping.name, index) not in self._insert_taken:
                    state.index, state.version = index, version
                    self._insert_taken.add((store.mapping.name, index))
                    break
            else:
                raise KvFullError(
                    f"no slot for key within {_PROBE_LIMIT} probes"
                )
        state.pending = ("put", bytes(value))

    def delete(self, store, key: bytes):
        """Buffer a delete (generator); returns whether the key was
        visible to this transaction."""
        self._ensure_open()
        state = yield from self._lookup(store, key)
        if state.pending is not None and state.pending[0] == "put":
            # deleting our own insert just cancels it; deleting our own
            # overwrite tombstones the committed slot
            state.pending = ("delete",) if state.exists else None
            return True
        if state.pending is not None:
            return False  # already deleted in this transaction
        if not state.exists:
            return False
        state.pending = ("delete",)
        return True

    # -- raw SeqLock records --------------------------------------------------

    def _record_state(self, lock: SeqLock):
        rkey = (lock.mapping.name, lock.offset)
        state = self._records.get(rkey)
        if state is not None:
            return state
        for _attempt in range(_SNAP_RETRIES):
            blob = yield from lock.mapping.read(lock.offset,
                                                lock.record_size)
            version = int.from_bytes(blob[:_WORD], "little")
            if version % 2 == 0:
                self._note_read(lock, version)
                state = _RecordState(lock, version, blob[_WORD:])
                self._records[rkey] = state
                return state
            self.runtime._m_read_retries.inc()
            yield from self._read_backoff.pause()
        raise TxnConflictError(
            f"record at {rkey} stayed write-locked through "
            f"{_SNAP_RETRIES} snapshots"
        )

    def read_record(self, lock: SeqLock):
        """Snapshot a raw SeqLock record's body (generator)."""
        self._ensure_open()
        state = yield from self._record_state(lock)
        return state.pending if state.pending is not None else state.body

    def write_record(self, lock: SeqLock, body: bytes):
        """Buffer a full-body write of a raw record (generator)."""
        self._ensure_open()
        if len(body) > lock.body_size:
            raise TxnMisuseError(
                f"body of {len(body)} bytes exceeds record body "
                f"{lock.body_size}"
            )
        state = yield from self._record_state(lock)
        state.pending = bytes(body)

    # -- commit ---------------------------------------------------------------

    def _pending_writes(self):
        writes = []
        for state in self._keys.values():
            if state.pending is None:
                continue
            lock = state.store.slot_lock(state.index)
            if state.pending[0] == "put":
                body = state.store._encode_body(state.key, state.pending[1])
            else:
                body = state.store._encode_body(b"", b"", tombstone=True)
            writes.append(_WriteEntry(
                lock, (lock.mapping.name, lock.offset), state.version, body
            ))
        for rkey, state in self._records.items():
            if state.pending is None:
                continue
            writes.append(_WriteEntry(state.lock, rkey, state.version,
                                      state.pending))
        # deadlock freedom: every transaction locks in this same order
        writes.sort(key=lambda w: w.rkey)
        return writes

    def _replay(self, op_factory, backoff):
        """Drive one idempotent post-decision write to completion
        (generator): publishes and lock releases are plain writes, so
        replaying them through faults is safe and *required* — the
        decision is already made."""
        for _attempt in range(_APPLY_ATTEMPTS):
            try:
                yield from op_factory()
                return
            except RecoverableError:
                yield from backoff.pause()
        raise TxnError(
            f"idempotent commit write did not land within "
            f"{_APPLY_ATTEMPTS} attempts"
        )

    def _acquire(self, entry: _WriteEntry):
        """Take write intent on one slot (generator) — exactly-once
        even when the CAS completion *and* the disambiguating read are
        eaten by faults: the token names us, so the word decides."""
        client = self.client
        try:
            got = yield from entry.lock.try_lock(entry.version,
                                                 token=self.token)
        except RecoverableError:
            got = None
            for _attempt in range(_APPLY_ATTEMPTS):
                try:
                    with client.rsan.exempt(client._rsan_actor):
                        observed = yield from read_word(entry.lock.mapping,
                                                        entry.lock.offset)
                except RecoverableError:
                    yield from self._read_backoff.pause()
                    continue
                got = observed == self.token
                break
            if got is None:
                raise TxnError(
                    f"could not resolve lock ownership of {entry.rkey} "
                    f"within {_APPLY_ATTEMPTS} attempts"
                )
            if got:
                # resolved to "held": join the publisher of the version
                # we CAS'd away, as try_lock would have
                client.rsan.sync_acquire(
                    client._rsan_actor, entry.lock._sync_key(entry.version)
                )
        return got

    def _validate(self, write_rkeys):
        """Re-read every read-only member of the read-set (generator):
        one batched round of version words, all of which must still
        carry their snapshot versions."""
        checks = [(rkey, entry) for rkey, entry in sorted(self._reads.items())
                  if rkey not in write_rkeys]
        if not checks:
            return
        client = self.client
        with client.rsan.exempt(client._rsan_actor):
            batch = client.batch()
            futures = []
            for rkey, entry in checks:
                fut = yield from batch.read(entry.lock.mapping,
                                            entry.lock.offset, _WORD)
                futures.append((rkey, entry, fut))
            yield from batch.flush()
            stale = None
            for rkey, entry, fut in futures:
                word = yield from fut.wait()
                observed = int.from_bytes(word, "little")
                if stale is None and observed != entry.version:
                    stale = (rkey, entry.version, observed)
        if stale is not None:
            raise TxnConflictError(
                f"read of {stale[0]} invalidated: "
                f"v{stale[1]} -> v{stale[2]}"
            )

    def commit(self):
        """Lock, validate, publish (generator).

        Raises :class:`TxnConflictError` (recoverable) when beaten;
        past validation the commit is irrevocable and rides out faults
        by replaying its idempotent writes.
        """
        self._ensure_open()
        runtime = self.runtime
        client = self.client
        sim = client.sim
        start = sim.now
        self._phase = "committing"
        writes = self._pending_writes()
        write_rkeys = {w.rkey for w in writes}
        replay = Backoff.for_client(client, f"txn-apply-{runtime.label}",
                                    base_s=1e-3, max_s=50e-3)
        held = []
        decided = False
        try:
            if self.deadline is not None and sim.now >= self.deadline:
                raise DeadlineExceededError(
                    "transaction deadline passed before commit"
                )
            for entry in writes:
                got = yield from self._acquire(entry)
                if not got:
                    raise TxnConflictError(
                        f"write intent on {entry.rkey} lost to a "
                        "concurrent writer"
                    )
                held.append(entry)
            yield from self._validate(write_rkeys)
            # -- the commit point: every write below is idempotent and
            # replayed until it lands, so the decision cannot tear
            decided = True
            read_keys = [entry.lock._sync_key(entry.version)
                         for rkey, entry in self._reads.items()
                         if rkey not in write_rkeys]
            write_keys = [w.lock._sync_key(w.version + 2) for w in writes]
            client.rsan.txn_commit(client._rsan_actor,
                                   read_keys=read_keys,
                                   write_keys=write_keys)
            for w in writes:
                yield from self._replay(
                    lambda w=w: w.lock.publish(self.token, w.body,
                                               new_version=w.version + 2),
                    replay,
                )
            self._phase = "committed"
            runtime._m_commits.inc()
            runtime._m_writes.observe(len(writes))
            runtime._m_commit_s.observe(sim.now - start)
        except BaseException as exc:
            self._phase = "aborted"
            runtime._m_aborts.inc()
            if isinstance(exc, TxnConflictError):
                runtime._m_conflicts.inc()
            client.rsan.txn_abort(client._rsan_actor)
            if not decided:
                for entry in held:
                    yield from self._replay(
                        lambda entry=entry: entry.lock.abort(entry.version),
                        replay,
                    )
            raise

    def abort(self):
        """Drop the transaction without committing.  Purely local:
        intent locks are only ever held inside :meth:`commit`, which
        releases them on its own failures."""
        self._ensure_open()
        self._phase = "aborted"
        self.runtime._m_aborts.inc()
        self.client.rsan.txn_abort(self.client._rsan_actor)


class TxnRuntime:
    """A transaction factory bound to one client.

    ``retries`` bounds :meth:`run`'s whole-transaction retry loop (an
    attempt budget); ``deadline`` is an absolute simulated time that
    outranks it.  Both default every transaction this runtime starts
    and can be overridden per call.
    """

    DEFAULT_RETRIES = 64

    def __init__(self, client, label: str = "txn", retries: int = None,
                 deadline: float = None):
        self.client = client
        self.label = label or "txn"
        self.retries = self.DEFAULT_RETRIES if retries is None else retries
        self.deadline = deadline
        # -- metrics (client-local, shared per label)
        _m = client.obs.metrics
        _labels = dict(label=self.label, host=client.nic.host.host_id)
        self._m_commits = _m.counter("txn.commits", **_labels)
        self._m_aborts = _m.counter("txn.aborts", **_labels)
        self._m_conflicts = _m.counter("txn.conflicts", **_labels)
        self._m_retries = _m.counter("txn.retries", **_labels)
        self._m_read_retries = _m.counter("txn.read_retries", **_labels)
        self._m_commit_s = _m.histogram("txn.commit_s", **_labels)
        self._m_writes = _m.histogram("txn.writes_per_commit", **_labels)

    @property
    def commits(self) -> int:
        return int(self._m_commits.value)

    @property
    def aborts(self) -> int:
        return int(self._m_aborts.value)

    @property
    def conflicts(self) -> int:
        return int(self._m_conflicts.value)

    def begin(self, deadline: float = None) -> Txn:
        """One transaction attempt with a cluster-unique odd token."""
        seq = getattr(self.client, "_txn_token_seq", 0) + 1
        self.client._txn_token_seq = seq
        host_id = self.client.nic.host.host_id
        token = (_TOKEN_BASE | (host_id << 24)
                 | ((seq % (1 << 23)) << 1) | 1)
        return Txn(self, token,
                   self.deadline if deadline is None else deadline)

    def run(self, fn, deadline: float = None, retries: int = None):
        """Run *fn(txn)* to a committed result (generator).

        *fn* is a generator function taking the :class:`Txn`; it must
        be safe to re-run, because conflicts and recoverable faults
        abort the attempt and rerun it on the shared backoff.  The
        bound is the runtime's ``deadline``/``retries`` unless
        overridden here; exhaustion raises the typed
        ``DeadlineExceededError`` / ``RetryBudgetExceededError``.
        """
        deadline = self.deadline if deadline is None else deadline
        budget = self.retries if retries is None else retries
        backoff = Backoff.for_client(self.client, f"txn-run-{self.label}",
                                     deadline=deadline, budget=budget)
        while True:
            txn = self.begin(deadline=deadline)
            try:
                result = yield from fn(txn)
            except (TxnConflictError, RecoverableError):
                txn.abort()
                self._m_retries.inc()
                yield from backoff.pause()
                continue
            try:
                yield from txn.commit()
            except (TxnConflictError, RecoverableError):
                self._m_retries.inc()
                yield from backoff.pause()
                continue
            return result
