"""One-sided multi-key transactions over remote data structures.

RStore leaves coordination to the client; this package assembles the
repo's coordination primitives into a transactional dataplane in the
style of Storm: SeqLock versions give optimistic snapshot reads,
CAS'd write intent (with unique odd tokens) gives exactly-once lock
acquisition under completion faults, and idempotent publish/abort
writes — replayed through crashes, partitions and wire faults — give
atomic multi-key commit with no server CPU and no master on the path.

Usage (inside a simulated app)::

    runtime = store.txn()                  # a TxnRuntime for the client

    def transfer(txn):
        a = yield from txn.get(store, b"alice")
        b = yield from txn.get(store, b"bob")
        yield from txn.put(store, b"alice", debit(a))
        yield from txn.put(store, b"bob", credit(b))

    yield from runtime.run(transfer)       # retries conflicts, commits

See DESIGN.md ("Transactions") for the commit protocol and the
abort/fence matrix, and ``benchmarks/test_bench_txn.py`` (E14) for
the OCC-vs-2PL contention study.
"""

from repro.txn.runtime import (
    Txn,
    TxnConflictError,
    TxnError,
    TxnMisuseError,
    TxnRuntime,
)

__all__ = [
    "Txn",
    "TxnConflictError",
    "TxnError",
    "TxnMisuseError",
    "TxnRuntime",
]
