"""Setup shim: the offline environment lacks the `wheel` package, so
editable installs must go through the legacy setuptools path
(`pip install -e . --no-build-isolation`), which needs a setup.py."""

from setuptools import setup

setup()
